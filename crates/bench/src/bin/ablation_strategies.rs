//! Ablation A1 — the four retransmission strategies head-to-head at the
//! engine level (§3.2.4's comparison, with the actual protocol
//! implementations rather than formulas).
//!
//! For each strategy and error rate: mean and σ of elapsed time, mean
//! packets sent, and mean retransmitted packets, over seeded trials of
//! a 64 KB transfer on the simulated V-kernel network.

use blast_analytic::{CostModel, ErrorFree};
use blast_bench::payload;
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_sim::{LossModel, SimConfig, Simulator};
use blast_stats::{OnlineStats, Table};

struct Row {
    mean: f64,
    sigma: f64,
    p99: f64,
    sent: f64,
    retx: f64,
}

fn measure(strategy: RetxStrategy, p_n: f64, trials: u64) -> Row {
    let t0_d = ErrorFree::new(CostModel::vkernel_sun()).blast(64);
    let mut elapsed = OnlineStats::new();
    let mut samples: Vec<f64> = Vec::with_capacity(trials as usize);
    let mut sent = OnlineStats::new();
    let mut retx = OnlineStats::new();
    let data = payload(64 * 1024);
    for t in 0..trials {
        let seed = blast_stats::experiment::splitmix64(0xAB1A ^ t);
        let sim_cfg = SimConfig::vkernel().with_loss(LossModel::iid(p_n), seed);
        let mut sim = Simulator::new(sim_cfg);
        let a = sim.add_host("sender");
        let b = sim.add_host("receiver");
        let mut cfg = ProtocolConfig::default().with_strategy(strategy);
        cfg.max_retries = 1_000_000;
        cfg.timeout = std::time::Duration::from_nanos((t0_d * 1e6) as u64).into();
        sim.attach(a, b, Box::new(BlastSender::new(1, data.clone(), &cfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
        let report = sim.run();
        if let Some(c) = report.completions.get(&(a, 1)) {
            if c.info.is_success() {
                elapsed.push(c.at.as_ms());
                samples.push(c.at.as_ms());
                sent.push(c.info.stats.data_packets_sent as f64);
                retx.push(c.info.stats.data_packets_retransmitted as f64);
            }
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p99_idx = ((samples.len() as f64 * 0.99) as usize).min(samples.len() - 1);
    Row {
        mean: elapsed.mean(),
        sigma: elapsed.population_stddev(),
        p99: samples[p99_idx],
        sent: sent.mean(),
        retx: retx.mean(),
    }
}

fn main() {
    let trials = 300;
    println!(
        "Ablation: retransmission strategies, 64 KB transfers, Tr = To(D), {trials} trials/point\n"
    );
    for p_n in [1e-4, 1e-3, 1e-2] {
        let mut t = Table::new(&[
            "strategy",
            "mean (ms)",
            "sigma (ms)",
            "p99 (ms)",
            "pkts sent",
            "retx pkts",
        ])
        .with_title(&format!("p_n = {p_n:.0e}"));
        for strategy in RetxStrategy::ALL {
            let r = measure(strategy, p_n, trials);
            t.row(&[
                &strategy.to_string(),
                &format!("{:.2}", r.mean),
                &format!("{:.2}", r.sigma),
                &format!("{:.1}", r.p99),
                &format!("{:.1}", r.sent),
                &format!("{:.1}", r.retx),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "expected shape: means nearly equal at 1e-4 (flat region); sigma ordering\n\
         no-NACK >> NACK > go-back-n >= selective; retransmitted packets shrink\n\
         from 'everything' (full) to 'suffix' (go-back-n) to 'exact set' (selective)."
    );
}
