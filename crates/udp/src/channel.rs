//! Datagram channels.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Largest datagram the drivers will send or receive.  Loopback UDP
/// carries much more than Ethernet; we keep a generous bound so large
/// packet-payload configurations still work.
pub const MAX_DATAGRAM: usize = 16 * 1024;

/// An unreliable datagram channel — the substrate the blast protocols
/// assume: datagrams may be lost, duplicated or reordered, never
/// corrupted silently (checksums convert corruption into loss).
pub trait Channel {
    /// Send one datagram.
    fn send(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Receive one datagram into `buf` within `timeout`.
    /// Returns `Ok(None)` on timeout.
    fn recv_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>>;
}

/// A connected UDP socket as a [`Channel`].
#[derive(Debug)]
pub struct UdpChannel {
    socket: UdpSocket,
}

impl UdpChannel {
    /// Bind to `local` and connect to `remote`.  The receive buffer is
    /// grown (best effort) so a whole blast round queues in the kernel
    /// instead of spilling — see [`crate::sockopt`].
    pub fn connect(local: SocketAddr, remote: SocketAddr) -> io::Result<Self> {
        let socket = UdpSocket::bind(local)?;
        crate::sockopt::grow_recv_buffer(&socket);
        socket.connect(remote)?;
        Ok(UdpChannel { socket })
    }

    /// Wrap an already-connected socket.
    pub fn from_socket(socket: UdpSocket) -> Self {
        UdpChannel { socket }
    }

    /// Create a connected loopback pair on ephemeral ports — the
    /// test/example workhorse.
    pub fn pair() -> io::Result<(UdpChannel, UdpChannel)> {
        let a = UdpSocket::bind("127.0.0.1:0")?;
        let b = UdpSocket::bind("127.0.0.1:0")?;
        crate::sockopt::grow_recv_buffer(&a);
        crate::sockopt::grow_recv_buffer(&b);
        let a_addr = a.local_addr()?;
        let b_addr = b.local_addr()?;
        a.connect(b_addr)?;
        b.connect(a_addr)?;
        Ok((UdpChannel { socket: a }, UdpChannel { socket: b }))
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl Channel for UdpChannel {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        debug_assert!(buf.len() <= MAX_DATAGRAM, "datagram too large");
        match self.socket.send(buf) {
            Ok(_) => Ok(()),
            // A connected UDP socket reports the peer's ICMP
            // port-unreachable as ECONNREFUSED (e.g. the other side
            // already closed after its final ack).  On this channel
            // abstraction that is just loss, not failure.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn recv_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>> {
        // A zero timeout means "no blocking at all"; UdpSocket treats
        // Some(ZERO) as an error, so clamp to a small positive floor —
        // kept well under a millisecond so paced senders' inter-burst
        // gaps are not rounded up into the scheduler noise.
        let t = timeout.max(Duration::from_micros(50));
        self.socket.set_read_timeout(Some(t))?;
        match self.socket.recv(buf) {
            Ok(n) => Ok(Some(n)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            // See `send`: a queued ICMP unreachable from our own
            // earlier send surfaces here.  Treat it as a timeout slice
            // with nothing delivered, not as a channel failure.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_roundtrips_datagrams() {
        let (mut a, mut b) = UdpChannel::pair().unwrap();
        a.send(b"hello").unwrap();
        let mut buf = [0u8; 64];
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"hello");

        b.send(b"world").unwrap();
        let n = a
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"world");
    }

    #[test]
    fn recv_times_out_cleanly() {
        let (mut a, _b) = UdpChannel::pair().unwrap();
        let mut buf = [0u8; 16];
        let got = a.recv_timeout(&mut buf, Duration::from_millis(5)).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn datagram_boundaries_preserved() {
        let (mut a, mut b) = UdpChannel::pair().unwrap();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        let mut buf = [0u8; 64];
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(n, 3);
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn large_datagrams_within_bound() {
        let (mut a, mut b) = UdpChannel::pair().unwrap();
        let big = vec![0xa5u8; 8 * 1024];
        a.send(&big).unwrap();
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let n = b
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(n, big.len());
        assert_eq!(&buf[..n], &big[..]);
    }
}
