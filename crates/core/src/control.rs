//! Transmission control: adaptive retransmission timeouts and paced
//! blast rounds.
//!
//! The paper's protocols are tuned by two knobs the text calls out
//! explicitly: the retransmission interval `Tr` (Figures 5/6 sweep it
//! from `To(D)` to `100 × To(1)`) and the rate at which a blast is
//! offered to the receiving interface (§3's *interface errors* are
//! exactly what happens when the sender overruns it).  On 1985 hardware
//! both were fixed constants; on a modern stack neither survives
//! contact with a shared socket buffer:
//!
//! * a fixed `Tr` is either so short it fires spuriously under load or
//!   so long that one lost round-0 packet stalls the transfer for the
//!   whole interval — [`RttEstimator`] replaces it with the classic
//!   Jacobson/Karn estimator (SRTT + RTTVAR, exponential backoff on
//!   retransmission, samples only from unambiguous exchanges);
//! * dumping a whole round into the socket in one loop overruns the
//!   receive buffer exactly like the paper's single-buffered interface —
//!   [`Pacer`] spreads each round into bursts separated by a configured
//!   gap, expressed through the ordinary timer machinery
//!   ([`PACE_TIMER`]) so every driver honours it without new I/O
//!   vocabulary.
//!
//! Both knobs keep their paper-faithful degenerate modes:
//! [`AdaptiveTimeout::Fixed`] is the fixed `Tr` every analytic-model
//! test pins, and [`PacingConfig::off`] is the paper's full-speed blast.

use std::time::Duration;

use crate::api::TimerToken;

/// The timer token engines arm between paced bursts of one round.
///
/// Chosen above `u32::MAX` so it can never collide with the
/// sliding-window sender's per-sequence tokens (sequence numbers are
/// `u32`) nor with the blast/stop-and-wait retransmission token `0`.
pub const PACE_TIMER: TimerToken = TimerToken(1 << 32);

/// Retransmission-timeout policy for a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdaptiveTimeout {
    /// The paper's fixed retransmission interval `Tr`: every timeout
    /// waits exactly this long, regardless of observed round trips.
    /// The degenerate mode the analytic model and the calibrated
    /// simulator tests pin.
    Fixed(Duration),
    /// Jacobson/Karn adaptive RTO: seeded at `initial` until the first
    /// round-trip sample, then `SRTT + 4 × RTTVAR`, clamped to
    /// `[min, max]`, doubled on every retransmission timeout.
    Adaptive {
        /// RTO before the first RTT sample.
        initial: Duration,
        /// Lower clamp on the computed RTO.
        min: Duration,
        /// Upper clamp on the computed RTO (and on backoff).
        max: Duration,
    },
}

impl AdaptiveTimeout {
    /// Adaptive defaults for a LAN/loopback path: start at 25 ms (well
    /// under the paper's 173 ms `To(D)`), clamp to [2 ms, 2 s].
    pub fn lan() -> Self {
        AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(25),
            min: Duration::from_millis(2),
            max: Duration::from_secs(2),
        }
    }

    /// The timeout in force before any RTT sample: the fixed value, or
    /// the adaptive seed.
    pub fn initial(&self) -> Duration {
        match self {
            AdaptiveTimeout::Fixed(d) => *d,
            AdaptiveTimeout::Adaptive { initial, .. } => *initial,
        }
    }

    /// True for the adaptive mode.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, AdaptiveTimeout::Adaptive { .. })
    }

    /// Validation error, if any (used by `ProtocolConfig::validated`).
    pub(crate) fn invalid(&self) -> Option<&'static str> {
        match self {
            AdaptiveTimeout::Fixed(d) if d.is_zero() => Some("retransmission timeout must be > 0"),
            AdaptiveTimeout::Adaptive { initial, min, max } => {
                if initial.is_zero() || min.is_zero() {
                    Some("adaptive timeout bounds must be > 0")
                } else if min > max || initial > max || initial < min {
                    Some("adaptive timeout requires min <= initial <= max")
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl From<Duration> for AdaptiveTimeout {
    /// A plain `Duration` is the fixed (paper) mode — so existing
    /// `cfg.timeout = Duration::from_millis(15).into()` call sites stay
    /// one-liners.
    fn from(d: Duration) -> Self {
        AdaptiveTimeout::Fixed(d)
    }
}

/// Jacobson/Karn round-trip estimator (RFC 6298 constants: gains 1/8
/// and 1/4, variance multiplier 4), with the fixed mode folded in as a
/// degenerate case so engines hold exactly one timeout source.
///
/// Karn's algorithm is the *caller's* half of the contract: feed
/// [`sample`](RttEstimator::sample) only round trips whose request was
/// transmitted exactly once (an ack following any retransmission is
/// ambiguous), and call [`backoff`](RttEstimator::backoff) on every
/// retransmission timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RttEstimator {
    /// Smoothed RTT in nanoseconds; `None` until the first sample.
    srtt_ns: Option<u64>,
    /// RTT variance in nanoseconds.
    rttvar_ns: u64,
    /// Current RTO in nanoseconds.
    rto_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Fixed mode: `sample` and `backoff` are no-ops.
    fixed: bool,
}

impl RttEstimator {
    /// An estimator implementing `policy`.
    pub fn new(policy: &AdaptiveTimeout) -> Self {
        match *policy {
            AdaptiveTimeout::Fixed(d) => {
                let ns = d.as_nanos() as u64;
                RttEstimator {
                    srtt_ns: None,
                    rttvar_ns: 0,
                    rto_ns: ns,
                    min_ns: ns,
                    max_ns: ns,
                    fixed: true,
                }
            }
            AdaptiveTimeout::Adaptive { initial, min, max } => RttEstimator {
                srtt_ns: None,
                rttvar_ns: 0,
                rto_ns: initial.as_nanos() as u64,
                min_ns: min.as_nanos() as u64,
                max_ns: max.as_nanos() as u64,
                fixed: false,
            },
        }
    }

    /// The retransmission timeout currently in force.
    pub fn rto(&self) -> Duration {
        Duration::from_nanos(self.rto_ns)
    }

    /// The smoothed round-trip estimate, once at least one sample has
    /// been taken (always `None` in fixed mode).
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt_ns.map(Duration::from_nanos)
    }

    /// Feed one **unambiguous** round-trip measurement (Karn: the
    /// request was transmitted exactly once).  No-op in fixed mode.
    pub fn sample(&mut self, rtt: Duration) {
        if self.fixed {
            return;
        }
        let r = rtt.as_nanos() as u64;
        match self.srtt_ns {
            None => {
                // RFC 6298 §2.2: SRTT = R, RTTVAR = R/2.
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|;
                // SRTT = 7/8·SRTT + 1/8·R.
                let delta = srtt.abs_diff(r);
                self.rttvar_ns = self.rttvar_ns - self.rttvar_ns / 4 + delta / 4;
                self.srtt_ns = Some(srtt - srtt / 8 + r / 8);
            }
        }
        let srtt = self.srtt_ns.expect("just set");
        self.rto_ns = (srtt + 4 * self.rttvar_ns.max(1)).clamp(self.min_ns, self.max_ns);
    }

    /// Exponential backoff after a retransmission timeout (Karn's
    /// second half), capped at the configured maximum.  No-op in fixed
    /// mode.
    pub fn backoff(&mut self) {
        if self.fixed {
            return;
        }
        self.rto_ns = self.rto_ns.saturating_mul(2).min(self.max_ns);
    }
}

/// How a multi-packet round is offered to the network.
///
/// A config with `max_burst == 0` is *static*: every burst is exactly
/// [`burst`](PacingConfig::burst) packets, forever (the behaviour every
/// exact-schedule test pins).  Setting `max_burst > 0` makes the
/// [`Pacer`] **AIMD-adaptive**: clean rounds grow the burst additively
/// by [`growth`](PacingConfig::growth) up to `max_burst`, and every
/// loss signal (NACK or retransmission timeout) halves it down to
/// [`min_burst`](PacingConfig::min_burst) — Reno-style probing with the
/// burst size as the congestion window, the gap as the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacingConfig {
    /// Packets emitted back-to-back before the engine yields for
    /// [`gap`](PacingConfig::gap).  `0` disables pacing (the paper's
    /// full-speed blast).  In AIMD mode this is the *initial* burst.
    pub burst: u32,
    /// Inter-burst gap, expressed through [`PACE_TIMER`].
    pub gap: Duration,
    /// AIMD floor: the burst never shrinks below this.  Ignored when
    /// `max_burst == 0` (static pacing).
    pub min_burst: u32,
    /// AIMD ceiling: the burst never grows above this.  `0` disables
    /// adaptation entirely (the pre-AIMD static pacer).
    pub max_burst: u32,
    /// Additive increase per clean round, in packets.
    pub growth: u32,
}

impl Default for PacingConfig {
    fn default() -> Self {
        PacingConfig::off()
    }
}

impl PacingConfig {
    /// The smallest socket wait the I/O tier should ever issue: waits
    /// below this are indistinguishable from "poll now" at kernel timer
    /// resolution, and `std`'s socket timeouts reject zero outright.
    /// Kept well under the shortest sane inter-burst [`gap`] so pacing
    /// deadlines are never rounded up into scheduler noise — the single
    /// authority for the floor the UDP channel and driver used to
    /// hard-code separately.
    ///
    /// [`gap`]: PacingConfig::gap
    pub const MIN_WAIT: Duration = Duration::from_micros(50);

    /// No pacing: every round goes out in one loop (the paper's mode).
    pub fn off() -> Self {
        PacingConfig {
            burst: 0,
            gap: Duration::ZERO,
            min_burst: 0,
            max_burst: 0,
            growth: 0,
        }
    }

    /// Pace a *fixed* `burst` packets per `gap` (no adaptation).
    pub fn new(burst: u32, gap: Duration) -> Self {
        PacingConfig {
            burst,
            gap,
            min_burst: 0,
            max_burst: 0,
            growth: 0,
        }
    }

    /// AIMD pacing: start at `burst` packets per `gap`, grow by
    /// `growth` per clean round up to `max_burst`, halve on loss down
    /// to `min_burst`.
    pub fn aimd(burst: u32, gap: Duration, min_burst: u32, max_burst: u32, growth: u32) -> Self {
        PacingConfig {
            burst,
            gap,
            min_burst,
            max_burst,
            growth,
        }
    }

    /// LAN/loopback defaults: start at 64 packets per 250 µs (≈ 360 MB/s
    /// at 1400-byte payloads) and let AIMD probe between 4 and 256.
    /// The old static preset (32 / 500 µs) was sized for drivers that
    /// could not *wait* a sub-millisecond gap and had to spin it; with
    /// the event-driven `NetIo` waits the gap is honest, so the initial
    /// rate can sit near the link and the shrink-on-loss half of AIMD —
    /// down to ~22 MB/s at the floor — covers the flooded-`SO_RCVBUF`
    /// case the conservative preset existed for.
    pub fn lan() -> Self {
        PacingConfig::aimd(64, Duration::from_micros(250), 4, 256, 32)
    }

    /// True when pacing is in force.
    pub fn enabled(&self) -> bool {
        self.burst > 0 && !self.gap.is_zero()
    }

    /// True when the burst size adapts (AIMD mode).
    pub fn is_adaptive(&self) -> bool {
        self.enabled() && self.max_burst > 0
    }

    /// Validation error, if any.
    pub(crate) fn invalid(&self) -> Option<&'static str> {
        if self.burst > 0 && self.gap.is_zero() {
            Some("pacing burst requires a non-zero gap")
        } else if self.max_burst > 0 {
            if self.min_burst == 0 {
                Some("AIMD pacing requires min_burst >= 1")
            } else if self.min_burst > self.burst || self.burst > self.max_burst {
                Some("AIMD pacing requires min_burst <= burst <= max_burst")
            } else if self.growth == 0 && self.min_burst != self.max_burst {
                Some("AIMD pacing requires growth >= 1")
            } else {
                None
            }
        } else {
            None
        }
    }
}

/// A point-in-time view of one [`Pacer`]'s AIMD state, for metrics and
/// the perf harness's burst-trajectory records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacerSnapshot {
    /// The configured initial burst.
    pub initial_burst: u32,
    /// The burst size currently in force.
    pub burst: u32,
    /// The smallest burst the pacer ever shrank to.
    pub min_burst_seen: u32,
    /// Mean burst size over all signalled rounds (the current burst if
    /// no round has been signalled yet).
    pub mean_burst: f64,
    /// Rounds that completed without a loss signal.
    pub clean_rounds: u64,
    /// Loss signals received (NACKs + retransmission timeouts).
    pub loss_events: u64,
}

/// The per-engine pacing governor: answers "how many packets may this
/// burst emit" so the emission loops stay branch-light, and — in AIMD
/// mode — integrates the engine's clean-round/loss signals into the
/// burst size.
#[derive(Debug, Clone, Copy)]
pub struct Pacer {
    cfg: PacingConfig,
    /// Burst size currently in force (meaningless when unpaced).
    burst: u32,
    min_seen: u32,
    rounds: u64,
    clean_rounds: u64,
    loss_events: u64,
    burst_sum: u64,
}

impl Pacer {
    /// A pacer enforcing `cfg`.
    pub fn new(cfg: PacingConfig) -> Self {
        Pacer {
            cfg,
            burst: cfg.burst,
            min_seen: cfg.burst,
            rounds: 0,
            clean_rounds: 0,
            loss_events: 0,
            burst_sum: 0,
        }
    }

    /// True when bursts are bounded.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// True when the burst size adapts to loss signals.
    pub fn is_adaptive(&self) -> bool {
        self.cfg.is_adaptive()
    }

    /// Packets the current burst may emit (`u32::MAX` when unpaced).
    pub fn burst_budget(&self) -> u32 {
        if self.cfg.enabled() {
            self.burst
        } else {
            u32::MAX
        }
    }

    /// The inter-burst gap.
    pub fn gap(&self) -> Duration {
        self.cfg.gap
    }

    /// Signal that a round completed without loss (a positive ack for
    /// everything solicited): additive increase.
    pub fn on_clean_round(&mut self) {
        if !self.cfg.enabled() {
            return;
        }
        self.rounds += 1;
        self.burst_sum += u64::from(self.burst);
        self.clean_rounds += 1;
        if self.cfg.is_adaptive() {
            self.burst = self
                .burst
                .saturating_add(self.cfg.growth)
                .min(self.cfg.max_burst);
        }
    }

    /// Signal a loss event (NACK or retransmission timeout):
    /// multiplicative decrease.
    pub fn on_loss(&mut self) {
        if !self.cfg.enabled() {
            return;
        }
        self.rounds += 1;
        self.burst_sum += u64::from(self.burst);
        self.loss_events += 1;
        if self.cfg.is_adaptive() {
            self.burst = (self.burst / 2).max(self.cfg.min_burst).max(1);
            self.min_seen = self.min_seen.min(self.burst);
        }
    }

    /// The current AIMD state (telemetry; cheap to copy).
    pub fn snapshot(&self) -> PacerSnapshot {
        PacerSnapshot {
            initial_burst: self.cfg.burst,
            burst: self.burst,
            min_burst_seen: self.min_seen,
            mean_burst: if self.rounds == 0 {
                f64::from(self.burst)
            } else {
                self.burst_sum as f64 / self.rounds as f64
            },
            clean_rounds: self.clean_rounds,
            loss_events: self.loss_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mode_is_inert() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::Fixed(Duration::from_millis(173)));
        assert_eq!(e.rto(), Duration::from_millis(173));
        e.sample(Duration::from_micros(20));
        e.backoff();
        e.backoff();
        assert_eq!(e.rto(), Duration::from_millis(173), "fixed stays fixed");
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_seeds_srtt_and_variance() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::lan());
        assert_eq!(e.rto(), Duration::from_millis(25));
        e.sample(Duration::from_millis(10));
        assert_eq!(e.srtt(), Some(Duration::from_millis(10)));
        // RTO = SRTT + 4·(SRTT/2) = 3·SRTT = 30 ms.
        assert_eq!(e.rto(), Duration::from_millis(30));
    }

    #[test]
    fn constant_rtt_converges_to_min_clamp() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(100),
            min: Duration::from_millis(1),
            max: Duration::from_secs(1),
        });
        for _ in 0..100 {
            e.sample(Duration::from_micros(500));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            srtt.abs_diff(Duration::from_micros(500)) < Duration::from_micros(5),
            "srtt converges to the true rtt, got {srtt:?}"
        );
        // Variance decays toward zero, so the RTO hits the min clamp.
        assert_eq!(e.rto(), Duration::from_millis(1));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(10),
            min: Duration::from_millis(1),
            max: Duration::from_millis(100),
        });
        let mut prev = e.rto();
        for _ in 0..10 {
            e.backoff();
            assert!(e.rto() >= prev, "backoff is monotone");
            prev = e.rto();
        }
        assert_eq!(e.rto(), Duration::from_millis(100), "capped at max");
    }

    #[test]
    fn sample_after_backoff_recovers() {
        let mut e = RttEstimator::new(&AdaptiveTimeout::lan());
        e.sample(Duration::from_millis(4));
        for _ in 0..6 {
            e.backoff();
        }
        assert!(e.rto() > Duration::from_millis(100));
        // One valid sample recomputes from SRTT/RTTVAR, collapsing the
        // backed-off value.
        e.sample(Duration::from_millis(4));
        assert!(e.rto() < Duration::from_millis(20), "rto {:?}", e.rto());
    }

    #[test]
    fn timeout_policy_validation() {
        assert!(AdaptiveTimeout::Fixed(Duration::ZERO).invalid().is_some());
        assert!(AdaptiveTimeout::Fixed(Duration::from_millis(1))
            .invalid()
            .is_none());
        assert!(AdaptiveTimeout::lan().invalid().is_none());
        assert!(AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(1),
            min: Duration::from_millis(2),
            max: Duration::from_millis(3),
        }
        .invalid()
        .is_some());
        assert!(AdaptiveTimeout::Adaptive {
            initial: Duration::from_millis(5),
            min: Duration::from_millis(2),
            max: Duration::from_millis(3),
        }
        .invalid()
        .is_some());
        let t: AdaptiveTimeout = Duration::from_millis(7).into();
        assert_eq!(t, AdaptiveTimeout::Fixed(Duration::from_millis(7)));
        assert_eq!(t.initial(), Duration::from_millis(7));
        assert!(!t.is_adaptive());
        assert!(AdaptiveTimeout::lan().is_adaptive());
    }

    #[test]
    fn pacer_budget_and_validation() {
        let p = Pacer::new(PacingConfig::off());
        assert!(!p.enabled());
        assert_eq!(p.burst_budget(), u32::MAX);

        let p = Pacer::new(PacingConfig::new(8, Duration::from_micros(100)));
        assert!(p.enabled());
        assert!(!p.is_adaptive());
        assert_eq!(p.burst_budget(), 8);
        assert_eq!(p.gap(), Duration::from_micros(100));

        assert!(PacingConfig::off().invalid().is_none());
        assert!(PacingConfig::lan().invalid().is_none());
        assert!(PacingConfig::lan().is_adaptive());
        assert!(PacingConfig::new(4, Duration::ZERO).invalid().is_some());
        // AIMD bounds must bracket the initial burst, with room to grow.
        let gap = Duration::from_micros(100);
        assert!(PacingConfig::aimd(8, gap, 2, 32, 4).invalid().is_none());
        assert!(PacingConfig::aimd(8, gap, 0, 32, 4).invalid().is_some());
        assert!(PacingConfig::aimd(8, gap, 9, 32, 4).invalid().is_some());
        assert!(PacingConfig::aimd(33, gap, 2, 32, 4).invalid().is_some());
        assert!(PacingConfig::aimd(8, gap, 2, 32, 0).invalid().is_some());
        assert!(PacingConfig::aimd(8, gap, 8, 8, 0).invalid().is_none());
    }

    #[test]
    fn static_pacer_ignores_signals() {
        let mut p = Pacer::new(PacingConfig::new(8, Duration::from_micros(100)));
        p.on_loss();
        p.on_clean_round();
        p.on_loss();
        assert_eq!(p.burst_budget(), 8, "static burst never moves");
        let snap = p.snapshot();
        assert_eq!(snap.burst, 8);
        assert_eq!(snap.min_burst_seen, 8);
        assert_eq!(snap.clean_rounds, 1);
        assert_eq!(snap.loss_events, 2);
    }

    #[test]
    fn aimd_pacer_grows_additively_and_shrinks_multiplicatively() {
        let cfg = PacingConfig::aimd(16, Duration::from_micros(100), 4, 64, 8);
        let mut p = Pacer::new(cfg);
        assert!(p.is_adaptive());
        assert_eq!(p.burst_budget(), 16);

        p.on_clean_round();
        assert_eq!(p.burst_budget(), 24, "additive increase");
        for _ in 0..20 {
            p.on_clean_round();
        }
        assert_eq!(p.burst_budget(), 64, "capped at the ceiling");

        p.on_loss();
        assert_eq!(p.burst_budget(), 32, "multiplicative decrease");
        for _ in 0..20 {
            p.on_loss();
        }
        assert_eq!(p.burst_budget(), 4, "floored");
        assert_eq!(p.snapshot().min_burst_seen, 4);

        // Recovery: (64 - 4) / 8 = 8 clean rounds back to the ceiling.
        for _ in 0..8 {
            p.on_clean_round();
        }
        assert_eq!(p.burst_budget(), 64);
        let snap = p.snapshot();
        assert!(snap.mean_burst > 4.0 && snap.mean_burst < 64.0);
        assert_eq!(snap.initial_burst, 16);
    }

    #[test]
    fn unpaced_pacer_signals_are_inert() {
        let mut p = Pacer::new(PacingConfig::off());
        p.on_loss();
        p.on_clean_round();
        assert_eq!(p.burst_budget(), u32::MAX);
        assert_eq!(p.snapshot().clean_rounds, 0);
        assert_eq!(p.snapshot().loss_events, 0);
    }
}
