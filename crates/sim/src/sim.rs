//! The discrete-event simulator.
//!
//! Models exactly the machinery the paper measures (§2.1):
//!
//! * **Host processors** that copy packets between memory and network
//!   interface at `C` per data packet / `Ca` per ack, serve receive
//!   copies before starting new transmit copies, and (in the
//!   single-buffered configuration) busy-wait on transmission
//!   completion — "each of the two programs simply busy-waits on the
//!   completion of its current operation".
//! * **Network interfaces** with a configurable number of transmit and
//!   receive buffers.  A full receive interface drops arriving frames —
//!   the *interface errors* of §3 that motivate NACK-based
//!   retransmission.
//! * **A shared Ethernet** that serializes transmissions (low-load
//!   assumption: no collisions, FIFO access) at `T` per data packet /
//!   `Ta` per ack, with propagation delay `τ`, and iid or
//!   Gilbert–Elliott loss injection.
//!
//! The protocol engines from `blast-core` run unmodified on top: their
//! `Transmit` actions become copy-then-transmit jobs, their timers
//! become simulated-time events (armed from the *end* of the preceding
//! transmission, matching the paper's definition of the retransmission
//! interval `T_r`), and their completions time-stamp the transfer.
//!
//! Validation: `tests/model_vs_sim.rs` asserts that this simulator
//! reproduces §2.1.3's closed-form elapsed times **exactly** (to the
//! nanosecond) for stop-and-wait, blast and double-buffered blast, and
//! within a fraction of a percent for sliding window.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::time::Duration;

use blast_core::api::{Action, CompletionInfo, TimerToken};
use blast_core::engine::Engine;
use blast_core::pool::PooledBuf;
use blast_wire::frame::frame_wire_len;
use blast_wire::header::PacketKind;
use blast_wire::packet::Datagram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{LossModel, SimConfig, TimingPolicy};
use crate::time::{ms, SimTime};
use crate::trace::{Lane, TraceEvent};

/// A frame in flight through the simulated machinery.
#[derive(Debug)]
struct Frame {
    src: usize,
    dst: usize,
    // Pooled: delivering (or dropping) the frame recycles the buffer
    // into the engines' shared pool.
    bytes: PooledBuf,
    is_data: bool,
    label: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    TxCopy,
    RxCopy,
}

#[derive(Debug, Clone, Copy)]
struct Job {
    kind: JobKind,
    frame: u64,
    started: SimTime,
}

/// Per-host counters reported after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Frames fully transmitted from this host.
    pub frames_sent: u64,
    /// Frames copied out of this host's interface (delivered to the
    /// protocol engine).
    pub frames_delivered: u64,
    /// Frames dropped because every receive buffer was occupied — the
    /// paper's "interface errors".
    pub overruns: u64,
    /// Total processor time spent copying.
    pub cpu_busy: Duration,
}

struct Host {
    name: String,
    cpu_busy: bool,
    /// Busy-wait hold: the CPU does nothing until this frame's
    /// transmission completes.
    held_frame: Option<u64>,
    rx_q: VecDeque<u64>,
    tx_q: VecDeque<u64>,
    tx_slots_busy: usize,
    rx_slots_busy: usize,
    /// Copy-cost multiplier (> 1 = slower processor), for the
    /// speed-mismatch / interface-error experiments.
    cpu_scale: f64,
    stats: HostStats,
    current_job: Option<Job>,
}

struct Agent {
    engine: Box<dyn Engine>,
    peer: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    CpuDone {
        host: usize,
    },
    TxEnd {
        frame: u64,
    },
    Arrive {
        host: usize,
        frame: u64,
    },
    TimerFire {
        host: usize,
        transfer: u32,
        token: TimerToken,
        gen: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A finished engine's completion record.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Simulated time of completion.
    pub at: SimTime,
    /// The engine's completion report.
    pub info: CompletionInfo,
}

/// Everything a simulation run produced.
#[derive(Debug)]
pub struct SimReport {
    /// Simulated time when the run stopped.
    pub end: SimTime,
    /// Completion record per `(host, transfer_id)`.
    pub completions: HashMap<(usize, u32), Completion>,
    /// Per-host name and counters.
    pub host_stats: Vec<(String, HostStats)>,
    /// Total time the shared ether was transmitting.
    pub medium_busy: Duration,
    /// Frames dropped in flight by the loss model.
    pub wire_losses: u64,
    /// Datagrams that reached a host with no engine for their transfer.
    pub unroutable: u64,
    /// Events processed.
    pub events_processed: u64,
    /// Collected trace (empty unless `SimConfig::trace`).
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Completion time of `(host, transfer)` in milliseconds.
    pub fn elapsed_ms(&self, host: usize, transfer: u32) -> Option<f64> {
        self.completions
            .get(&(host, transfer))
            .map(|c| c.at.as_ms())
    }

    /// Whether `(host, transfer)` completed successfully.
    pub fn succeeded(&self, host: usize, transfer: u32) -> bool {
        self.completions
            .get(&(host, transfer))
            .map(|c| c.info.is_success())
            .unwrap_or(false)
    }

    /// Fraction of the run during which the ether was busy — the
    /// paper's network utilization `u_n` (§2.1.3).
    pub fn utilization(&self) -> f64 {
        if self.end == SimTime::ZERO {
            return 0.0;
        }
        self.medium_busy.as_nanos() as f64 / self.end.as_nanos() as f64
    }

    /// Total interface overruns across hosts.
    pub fn total_overruns(&self) -> u64 {
        self.host_stats.iter().map(|(_, s)| s.overruns).sum()
    }
}

enum LossState {
    None,
    Iid {
        p: f64,
    },
    Ge {
        bad: bool,
        p_g2b: f64,
        p_b2g: f64,
        loss_good: f64,
        loss_bad: f64,
    },
}

/// A timer armed once its frame finishes transmitting:
/// `(host, transfer, token, generation, delay)`.
type PendingArm = (usize, u32, TimerToken, u64, Duration);

/// The discrete-event simulator.  Build with [`Simulator::new`], add
/// hosts, attach engines, then [`run`](Simulator::run).
pub struct Simulator {
    cfg: SimConfig,
    now: SimTime,
    queue: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    frames: HashMap<u64, Frame>,
    frame_seq: u64,
    hosts: Vec<Host>,
    agents: BTreeMap<(usize, u32), Agent>,
    timers: HashMap<(usize, u32, TimerToken), u64>,
    /// Timers to arm when a frame finishes transmitting.
    pending_arm: HashMap<u64, Vec<PendingArm>>,
    medium_current: Option<u64>,
    medium_q: VecDeque<u64>,
    medium_busy: Duration,
    rng: SmallRng,
    loss: LossState,
    wire_losses: u64,
    unroutable: u64,
    completions: HashMap<(usize, u32), Completion>,
    trace: Vec<TraceEvent>,
    /// Copy-cost line for `TimingPolicy::PerByte`: (base_ms, per_byte_ms).
    copy_line: (f64, f64),
}

impl Simulator {
    /// Create a simulator.
    pub fn new(cfg: SimConfig) -> Self {
        let loss = match cfg.loss {
            LossModel::None => LossState::None,
            LossModel::Iid { p } => LossState::Iid { p },
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            } => LossState::Ge {
                bad: false,
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            },
        };
        // Anchor the per-byte copy line through the paper's two
        // calibration points, expressed as wire lengths.
        let data_wire = frame_wire_len(blast_wire::HEADER_LEN + cfg.data_bytes);
        let ack_wire = frame_wire_len(blast_wire::HEADER_LEN + 8).max(cfg.ack_bytes);
        let copy_line = cfg.cost.copy_cost_line(data_wire, ack_wire);
        Simulator {
            rng: SmallRng::seed_from_u64(cfg.seed),
            loss,
            copy_line,
            cfg,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            event_seq: 0,
            frames: HashMap::new(),
            frame_seq: 0,
            hosts: Vec::new(),
            agents: BTreeMap::new(),
            timers: HashMap::new(),
            pending_arm: HashMap::new(),
            medium_current: None,
            medium_q: VecDeque::new(),
            medium_busy: Duration::ZERO,
            wire_losses: 0,
            unroutable: 0,
            completions: HashMap::new(),
            trace: Vec::new(),
        }
    }

    /// Add a host; returns its id.
    pub fn add_host(&mut self, name: &str) -> usize {
        self.add_host_scaled(name, 1.0)
    }

    /// Add a host whose copy costs are multiplied by `cpu_scale`
    /// (`> 1` = slower machine) — breaks the paper's "matched in speed"
    /// assumption on purpose, for the interface-error experiments.
    pub fn add_host_scaled(&mut self, name: &str, cpu_scale: f64) -> usize {
        assert!(cpu_scale > 0.0, "cpu_scale must be positive");
        self.hosts.push(Host {
            name: name.to_string(),
            cpu_busy: false,
            held_frame: None,
            rx_q: VecDeque::new(),
            tx_q: VecDeque::new(),
            tx_slots_busy: 0,
            rx_slots_busy: 0,
            cpu_scale,
            stats: HostStats::default(),
            current_job: None,
        });
        self.hosts.len() - 1
    }

    /// Attach an engine to `host`; its transmissions go to `peer`.
    ///
    /// # Panics
    /// Panics on unknown host ids or if `(host, transfer_id)` is taken.
    pub fn attach(&mut self, host: usize, peer: usize, engine: Box<dyn Engine>) {
        assert!(
            host < self.hosts.len() && peer < self.hosts.len(),
            "unknown host"
        );
        let key = (host, engine.transfer_id());
        let prev = self.agents.insert(key, Agent { engine, peer });
        assert!(
            prev.is_none(),
            "duplicate engine for host {host} transfer {}",
            key.1
        );
    }

    fn push_event(&mut self, at: SimTime, ev: Ev) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.queue.push(Reverse(Event { at, seq, ev }));
    }

    fn copy_cost(&self, frame: &Frame, host: usize) -> Duration {
        let scale = self.hosts[host].cpu_scale;
        let base_ms = match self.cfg.timing {
            TimingPolicy::PerKind => {
                if frame.is_data {
                    self.cfg.cost.c_data
                } else {
                    self.cfg.cost.c_ack
                }
            }
            TimingPolicy::PerByte => {
                let wire = frame_wire_len(frame.bytes.len());
                (self.copy_line.0 + self.copy_line.1 * wire as f64).max(0.0)
            }
        };
        ms(base_ms * scale)
    }

    fn tx_time(&self, frame: &Frame) -> Duration {
        match self.cfg.timing {
            TimingPolicy::PerKind => {
                if frame.is_data {
                    ms(self.cfg.cost.t_data)
                } else {
                    ms(self.cfg.cost.t_ack)
                }
            }
            TimingPolicy::PerByte => {
                let wire_bits = (frame_wire_len(frame.bytes.len()) * 8) as f64;
                // 10 Mbit/s = 10 000 bits per ms.
                ms(wire_bits / 10_000.0)
            }
        }
    }

    fn lose_frame(&mut self) -> bool {
        match &mut self.loss {
            LossState::None => false,
            LossState::Iid { p } => self.rng.gen::<f64>() < *p,
            LossState::Ge {
                bad,
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            } => {
                // Transition, then sample loss in the new state.
                let flip: f64 = self.rng.gen();
                if *bad {
                    if flip < *p_b2g {
                        *bad = false;
                    }
                } else if flip < *p_g2b {
                    *bad = true;
                }
                let p = if *bad { *loss_bad } else { *loss_good };
                self.rng.gen::<f64>() < p
            }
        }
    }

    /// Execute a batch of engine actions emitted by `(host, transfer)`.
    fn process_actions(&mut self, host: usize, transfer: u32, actions: Vec<Action>) {
        let peer = self
            .agents
            .get(&(host, transfer))
            .map(|a| a.peer)
            .unwrap_or(host);
        let mut last_frame: Option<u64> = None;
        for action in actions {
            match action {
                Action::Transmit(bytes) => {
                    let (is_data, label) = match Datagram::parse(&bytes) {
                        Ok(d) => match d.kind {
                            PacketKind::Data => (true, format!("D{}", d.seq)),
                            PacketKind::Ack => (false, "A".to_string()),
                            PacketKind::Request => (false, "R".to_string()),
                            PacketKind::Cancel => (false, "X".to_string()),
                            PacketKind::Stats => (false, "S".to_string()),
                            PacketKind::Copy => (false, "C".to_string()),
                        },
                        Err(_) => {
                            debug_assert!(false, "engine emitted malformed datagram");
                            (false, "?".to_string())
                        }
                    };
                    let id = self.frame_seq;
                    self.frame_seq += 1;
                    self.frames.insert(
                        id,
                        Frame {
                            src: host,
                            dst: peer,
                            bytes,
                            is_data,
                            label,
                        },
                    );
                    self.hosts[host].tx_q.push_back(id);
                    last_frame = Some(id);
                    self.dispatch_cpu(host);
                }
                Action::SetTimer { token, after } => {
                    let gen = self.timers.entry((host, transfer, token)).or_insert(0);
                    *gen += 1;
                    let gen = *gen;
                    match last_frame {
                        // The retransmission interval starts when the
                        // just-requested transmission actually ends —
                        // the paper's T_r measures silence *after* the
                        // blast, not after the send() call.
                        Some(frame) => self
                            .pending_arm
                            .entry(frame)
                            .or_default()
                            .push((host, transfer, token, gen, after)),
                        None => {
                            let at = self.now + after;
                            self.push_event(
                                at,
                                Ev::TimerFire {
                                    host,
                                    transfer,
                                    token,
                                    gen,
                                },
                            );
                        }
                    }
                }
                Action::CancelTimer { token } => {
                    *self.timers.entry((host, transfer, token)).or_insert(0) += 1;
                }
                Action::Complete(info) => {
                    self.completions.insert(
                        (host, transfer),
                        Completion {
                            at: self.now,
                            info: *info,
                        },
                    );
                }
            }
        }
    }

    /// Start the next CPU job on `host` if one is runnable.
    fn dispatch_cpu(&mut self, host: usize) {
        let h = &mut self.hosts[host];
        if h.cpu_busy || h.held_frame.is_some() {
            return;
        }
        // Receive service first: the interrupt level drains the
        // interface before the send loop resumes (Figure 3.c's
        // copy-data / copy-ack alternation).
        if let Some(frame_id) = h.rx_q.pop_front() {
            h.cpu_busy = true;
            h.current_job = Some(Job {
                kind: JobKind::RxCopy,
                frame: frame_id,
                started: self.now,
            });
            let frame = &self.frames[&frame_id];
            let cost = self.copy_cost(frame, host);
            self.hosts[host].stats.cpu_busy += cost;
            let at = self.now + cost;
            self.push_event(at, Ev::CpuDone { host });
            return;
        }
        if let Some(&frame_id) = h.tx_q.front() {
            if h.tx_slots_busy < self.cfg.tx_buffers {
                h.tx_q.pop_front();
                h.tx_slots_busy += 1;
                h.cpu_busy = true;
                h.current_job = Some(Job {
                    kind: JobKind::TxCopy,
                    frame: frame_id,
                    started: self.now,
                });
                let frame = &self.frames[&frame_id];
                let cost = self.copy_cost(frame, host);
                self.hosts[host].stats.cpu_busy += cost;
                let at = self.now + cost;
                self.push_event(at, Ev::CpuDone { host });
            }
        }
    }

    fn kick_medium(&mut self) {
        if self.medium_current.is_some() {
            return;
        }
        let Some(frame_id) = self.medium_q.pop_front() else {
            return;
        };
        let frame = &self.frames[&frame_id];
        let t = self.tx_time(frame);
        self.medium_current = Some(frame_id);
        self.medium_busy += t;
        if self.cfg.trace {
            self.trace.push(TraceEvent {
                start: self.now,
                end: self.now + t,
                host: frame.src,
                lane: Lane::Wire,
                label: frame.label.clone(),
            });
        }
        let at = self.now + t;
        self.push_event(at, Ev::TxEnd { frame: frame_id });
    }

    fn on_cpu_done(&mut self, host: usize) {
        let job = self.hosts[host]
            .current_job
            .take()
            .expect("CpuDone without job");
        self.hosts[host].cpu_busy = false;
        match job.kind {
            JobKind::TxCopy => {
                if self.cfg.trace {
                    let frame = &self.frames[&job.frame];
                    self.trace.push(TraceEvent {
                        start: job.started,
                        end: self.now,
                        host,
                        lane: Lane::CpuCopyIn,
                        label: frame.label.clone(),
                    });
                }
                self.medium_q.push_back(job.frame);
                if self.cfg.busy_wait_tx {
                    self.hosts[host].held_frame = Some(job.frame);
                }
                self.kick_medium();
                self.dispatch_cpu(host);
            }
            JobKind::RxCopy => {
                self.hosts[host].rx_slots_busy -= 1;
                self.hosts[host].stats.frames_delivered += 1;
                let frame = self.frames.remove(&job.frame).expect("frame exists");
                if self.cfg.trace {
                    self.trace.push(TraceEvent {
                        start: job.started,
                        end: self.now,
                        host,
                        lane: Lane::CpuCopyOut,
                        label: frame.label.clone(),
                    });
                }
                match Datagram::parse(&frame.bytes) {
                    Ok(dgram) => {
                        let key = (host, dgram.transfer_id);
                        if let Some(agent) = self.agents.get_mut(&key) {
                            let mut actions = Vec::new();
                            // Engines see simulated time, so the adaptive
                            // RTO samples simulated round trips exactly.
                            agent.engine.set_now(self.now.as_duration());
                            agent.engine.on_datagram(&dgram, &mut actions);
                            self.process_actions(host, dgram.transfer_id, actions);
                        } else {
                            self.unroutable += 1;
                        }
                    }
                    Err(_) => self.unroutable += 1,
                }
                self.dispatch_cpu(host);
            }
        }
    }

    fn on_tx_end(&mut self, frame_id: u64) {
        self.medium_current = None;
        let (src, dst) = {
            let f = &self.frames[&frame_id];
            (f.src, f.dst)
        };
        self.hosts[src].tx_slots_busy -= 1;
        self.hosts[src].stats.frames_sent += 1;
        if self.hosts[src].held_frame == Some(frame_id) {
            self.hosts[src].held_frame = None;
        }
        // Arm any retransmission timers tied to this frame.
        if let Some(arms) = self.pending_arm.remove(&frame_id) {
            for (host, transfer, token, gen, after) in arms {
                let at = self.now + after;
                self.push_event(
                    at,
                    Ev::TimerFire {
                        host,
                        transfer,
                        token,
                        gen,
                    },
                );
            }
        }
        if self.lose_frame() {
            self.wire_losses += 1;
            self.frames.remove(&frame_id);
        } else {
            let at = self.now + ms(self.cfg.cost.tau);
            self.push_event(
                at,
                Ev::Arrive {
                    host: dst,
                    frame: frame_id,
                },
            );
        }
        self.kick_medium();
        self.dispatch_cpu(src);
    }

    fn on_arrive(&mut self, host: usize, frame_id: u64) {
        if self.hosts[host].rx_slots_busy >= self.cfg.rx_buffers {
            // Interface error: no buffer for the arriving frame.
            self.hosts[host].stats.overruns += 1;
            self.frames.remove(&frame_id);
            return;
        }
        self.hosts[host].rx_slots_busy += 1;
        self.hosts[host].rx_q.push_back(frame_id);
        self.dispatch_cpu(host);
    }

    fn on_timer_fire(&mut self, host: usize, transfer: u32, token: TimerToken, gen: u64) {
        if self.timers.get(&(host, transfer, token)).copied() != Some(gen) {
            return; // re-armed or cancelled
        }
        if let Some(agent) = self.agents.get_mut(&(host, transfer)) {
            let mut actions = Vec::new();
            agent.engine.set_now(self.now.as_duration());
            agent.engine.on_timer(token, &mut actions);
            self.process_actions(host, transfer, actions);
        }
    }

    /// Run until every attached engine has completed, the event queue
    /// drains, or the event budget is exhausted.
    pub fn run(mut self) -> SimReport {
        // Start all engines at t = 0 in deterministic (host, transfer)
        // order.
        let keys: Vec<(usize, u32)> = self.agents.keys().copied().collect();
        for key in keys {
            let mut actions = Vec::new();
            self.agents
                .get_mut(&key)
                .expect("key just listed")
                .engine
                .start(&mut actions);
            self.process_actions(key.0, key.1, actions);
        }

        let mut processed: u64 = 0;
        while self.completions.len() < self.agents.len() {
            processed += 1;
            if processed > self.cfg.max_events {
                break;
            }
            let Some(Reverse(event)) = self.queue.pop() else {
                break;
            };
            debug_assert!(event.at >= self.now, "time must not run backwards");
            self.now = event.at;
            match event.ev {
                Ev::CpuDone { host } => self.on_cpu_done(host),
                Ev::TxEnd { frame } => self.on_tx_end(frame),
                Ev::Arrive { host, frame } => self.on_arrive(host, frame),
                Ev::TimerFire {
                    host,
                    transfer,
                    token,
                    gen,
                } => self.on_timer_fire(host, transfer, token, gen),
            }
        }

        SimReport {
            end: self.now,
            completions: self.completions,
            host_stats: self.hosts.into_iter().map(|h| (h.name, h.stats)).collect(),
            medium_busy: self.medium_busy,
            wire_losses: self.wire_losses,
            unroutable: self.unroutable,
            events_processed: processed,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_core::blast::{BlastReceiver, BlastSender};
    use blast_core::config::ProtocolConfig;
    use blast_core::saw::{SawReceiver, SawSender};
    use std::sync::Arc;

    fn data(n: usize) -> Arc<[u8]> {
        (0..n).map(|i| (i % 241) as u8).collect::<Vec<u8>>().into()
    }

    fn two_host_sim(cfg: SimConfig) -> (Simulator, usize, usize) {
        let mut sim = Simulator::new(cfg);
        let a = sim.add_host("sender");
        let b = sim.add_host("receiver");
        (sim, a, b)
    }

    #[test]
    fn one_packet_exchange_is_3_91_ms() {
        // Table 2: the modelled 1 KB exchange takes 3.91 ms.
        let (mut sim, a, b) = two_host_sim(SimConfig::standalone());
        let pcfg = ProtocolConfig::default();
        let payload = data(1024);
        sim.attach(a, b, Box::new(SawSender::new(1, payload.clone(), &pcfg)));
        sim.attach(b, a, Box::new(SawReceiver::new(1, payload.len(), &pcfg)));
        let report = sim.run();
        assert!(report.succeeded(a, 1) && report.succeeded(b, 1));
        assert_eq!(report.elapsed_ms(a, 1), Some(3.91));
    }

    #[test]
    fn blast_64kb_matches_closed_form_exactly() {
        let (mut sim, a, b) = two_host_sim(SimConfig::standalone());
        let pcfg = ProtocolConfig::default();
        let payload = data(64 * 1024);
        sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
        let report = sim.run();
        assert!(report.succeeded(a, 1));
        // T_B = 64 × 2.17 + 1.74 = 140.62 ms, exactly.
        assert_eq!(report.elapsed_ms(a, 1), Some(140.62));
        // No losses, no overruns, no retransmissions.
        assert_eq!(report.wire_losses, 0);
        assert_eq!(report.total_overruns(), 0);
        let sender = &report.completions[&(a, 1)].info.stats;
        assert_eq!(sender.data_packets_sent, 64);
        assert_eq!(sender.data_packets_retransmitted, 0);
    }

    #[test]
    fn utilization_matches_paper() {
        let (mut sim, a, b) = two_host_sim(SimConfig::standalone());
        let pcfg = ProtocolConfig::default();
        let payload = data(64 * 1024);
        sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
        let report = sim.run();
        // (64×0.82 + 0.05) / 140.62 = 0.3736 — the paper's "38 percent".
        assert!((report.utilization() - 0.3736).abs() < 0.001);
    }

    #[test]
    fn loss_triggers_retransmission_and_still_delivers() {
        let cfg = SimConfig::standalone().with_loss(LossModel::iid(0.05), 42);
        let (mut sim, a, b) = two_host_sim(cfg);
        let mut pcfg = ProtocolConfig::default();
        pcfg.max_retries = 10_000;
        let payload = data(64 * 1024);
        sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
        let report = sim.run();
        assert!(report.succeeded(a, 1) && report.succeeded(b, 1));
        assert!(
            report.wire_losses > 0,
            "5% loss over ≥65 frames should drop something"
        );
        let elapsed = report.elapsed_ms(a, 1).unwrap();
        assert!(elapsed > 140.62, "losses must cost time: {elapsed}");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let cfg = SimConfig::standalone().with_loss(LossModel::iid(0.10), seed);
            let (mut sim, a, b) = two_host_sim(cfg);
            let mut pcfg = ProtocolConfig::default();
            pcfg.max_retries = 10_000;
            let payload = data(64 * 1024);
            sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
            sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
            let r = sim.run();
            (r.elapsed_ms(a, 1), r.wire_losses, r.events_processed)
        };
        assert_eq!(run(7), run(7));
        // At 10 % loss over 65+ frames different seeds essentially
        // always produce different loss patterns and elapsed times.
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn slow_receiver_with_tiny_interface_overruns() {
        // One station "transmitting at full speed" to a slower one with
        // a single receive buffer: the §3 interface-error regime.
        let cfg = SimConfig::standalone().with_rx_buffers(1);
        let mut sim = Simulator::new(cfg);
        let a = sim.add_host("sender");
        let b = sim.add_host_scaled("slow-receiver", 4.0);
        let mut pcfg = ProtocolConfig::default();
        pcfg.max_retries = 100_000;
        pcfg.timeout = std::time::Duration::from_millis(600).into();
        let payload = data(32 * 1024);
        sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
        let report = sim.run();
        assert!(
            report.total_overruns() > 0,
            "mismatched speeds must overrun the interface"
        );
        assert!(report.succeeded(a, 1), "go-back-n still recovers");
    }

    #[test]
    fn paced_blast_stretches_by_the_gap_budget() {
        // Pacing rides the ordinary timer machinery, so the simulator
        // honours it with no special code: a paced blast completes
        // correctly and pays at least its inter-burst gaps; the unpaced
        // run of the same transfer still matches the closed form.
        let run = |pacing| {
            let (mut sim, a, b) = two_host_sim(SimConfig::standalone());
            let mut pcfg = ProtocolConfig::default();
            pcfg.pacing = pacing;
            let payload = data(16 * 1024);
            sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
            sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
            let report = sim.run();
            assert!(report.succeeded(a, 1) && report.succeeded(b, 1));
            assert_eq!(report.completions[&(a, 1)].info.stats.data_packets_sent, 16);
            report.elapsed_ms(a, 1).unwrap()
        };
        let unpaced = run(blast_core::PacingConfig::off());
        // 16 packets in bursts of 4: 3 gaps of 5 ms must appear.
        let paced = run(blast_core::PacingConfig::new(
            4,
            std::time::Duration::from_millis(5),
        ));
        assert_eq!(unpaced, 16.0 * 2.17 + 1.74, "degenerate mode untouched");
        assert!(
            paced >= unpaced + 3.0 * 5.0 - 1.0,
            "paced {paced} vs unpaced {unpaced}"
        );
    }

    #[test]
    fn trace_collects_copy_and_wire_events() {
        let cfg = SimConfig::standalone().with_trace();
        let (mut sim, a, b) = two_host_sim(cfg);
        let pcfg = ProtocolConfig::default();
        let payload = data(3 * 1024);
        sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
        let report = sim.run();
        let copy_ins = report
            .trace
            .iter()
            .filter(|e| e.lane == Lane::CpuCopyIn)
            .count();
        let wires = report.trace.iter().filter(|e| e.lane == Lane::Wire).count();
        let copy_outs = report
            .trace
            .iter()
            .filter(|e| e.lane == Lane::CpuCopyOut)
            .count();
        // 3 data + 1 ack, each copied in, transmitted, copied out.
        assert_eq!(copy_ins, 4);
        assert_eq!(wires, 4);
        assert_eq!(copy_outs, 4);
    }

    #[test]
    fn per_byte_timing_close_to_per_kind_for_paper_sizes() {
        let run = |timing| {
            let cfg = SimConfig::standalone().with_timing(timing);
            let (mut sim, a, b) = two_host_sim(cfg);
            let pcfg = ProtocolConfig::default();
            let payload = data(64 * 1024);
            sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
            sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
            sim.run().elapsed_ms(a, 1).unwrap()
        };
        let per_kind = run(TimingPolicy::PerKind);
        let per_byte = run(TimingPolicy::PerByte);
        let rel = (per_kind - per_byte).abs() / per_kind;
        assert!(
            rel < 0.06,
            "byte-accurate timing should stay close: {per_kind} vs {per_byte}"
        );
    }

    #[test]
    fn gilbert_elliott_bursts_cause_correlated_losses() {
        let cfg = SimConfig::standalone().with_loss(
            LossModel::GilbertElliott {
                p_g2b: 0.10,
                p_b2g: 0.3,
                loss_good: 0.0,
                loss_bad: 0.8,
            },
            11,
        );
        let (mut sim, a, b) = two_host_sim(cfg);
        let mut pcfg = ProtocolConfig::default();
        pcfg.max_retries = 100_000;
        let payload = data(64 * 1024);
        sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
        let report = sim.run();
        assert!(report.succeeded(a, 1));
        assert!(report.wire_losses > 0);
    }

    #[test]
    #[should_panic(expected = "duplicate engine")]
    fn duplicate_attachment_rejected() {
        let (mut sim, a, b) = two_host_sim(SimConfig::standalone());
        let pcfg = ProtocolConfig::default();
        sim.attach(a, b, Box::new(SawSender::new(1, data(10), &pcfg)));
        sim.attach(a, b, Box::new(SawSender::new(1, data(10), &pcfg)));
    }

    #[test]
    fn concurrent_transfers_share_the_ether() {
        // Two simultaneous blasts between disjoint host pairs.  Because
        // a single blast only fills ~38 % of the wire (§2.1.3 — the
        // processors are the bottleneck), *both* transfers fit on the
        // ether essentially unstretched; total utilization roughly
        // doubles.  "Network bandwidth is plentiful" (§ related work).
        let (mut sim, a, b) = two_host_sim(SimConfig::standalone());
        let c = sim.add_host("sender2");
        let d = sim.add_host("receiver2");
        let pcfg = ProtocolConfig::default();
        let payload = data(16 * 1024);
        sim.attach(a, b, Box::new(BlastSender::new(1, payload.clone(), &pcfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, payload.len(), &pcfg)));
        sim.attach(c, d, Box::new(BlastSender::new(2, payload.clone(), &pcfg)));
        sim.attach(d, c, Box::new(BlastReceiver::new(2, payload.len(), &pcfg)));
        let report = sim.run();
        assert!(report.succeeded(a, 1) && report.succeeded(c, 2));
        let t1 = report.elapsed_ms(a, 1).unwrap();
        let t2 = report.elapsed_ms(c, 2).unwrap();
        let uncontended = 16.0 * 2.17 + 1.74;
        // Neither transfer stretches by more than one data slot + ack.
        assert!(t1.max(t2) < uncontended + 1.0, "t1={t1} t2={t2}");
        // And the ether carried both: utilization ≈ 2 × 37 %.
        assert!(report.utilization() > 0.6, "u = {}", report.utilization());
    }
}
