//! Third-party-copy control messages: node-to-node transfers.
//!
//! The paper's client pulls every byte through itself; at replication
//! scale that hop is the bottleneck.  The `Copy` wire verb (WLCG
//! HTTPS-TPC / Globus style, see PAPERS.md) lets a client *orchestrate*
//! a transfer that flows node→node directly: the client submits a copy
//! to the source (or sink) node, polls its status, and verifies the
//! replica's bytes with a digest query — while the node reuses its own
//! client-side engine machinery as the outbound leg.
//!
//! Every message here rides as the payload of a
//! [`PacketKind::Copy`](blast_wire::header::PacketKind::Copy) datagram:
//! the datagram's `transfer_id` names the copy being discussed
//! (transfer *ownership* — the client chose the id and owns the copy's
//! lifecycle), and `seq` carries a request nonce echoed by replies.
//! The first payload byte is the operation; decoders are total (no
//! input panics) and exact-length (trailing bytes reject), and unknown
//! operations decode to `None` so future verbs degrade to a
//! recognisable `Unknown` status instead of undefined behaviour.

use std::net::{IpAddr, SocketAddr};

pub use crate::handshake::MAX_NAME_LEN;

/// Direction of the node-to-node leg, from the submitted-to node's
/// point of view: `Push` sends its blob to the remote node, `Pull`
/// fetches the remote's blob into its own store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyMode {
    /// The submitted-to node pushes its named blob to the remote node.
    Push,
    /// The submitted-to node pulls the named blob from the remote node.
    Pull,
}

impl CopyMode {
    fn to_wire(self) -> u8 {
        match self {
            CopyMode::Push => 1,
            CopyMode::Pull => 2,
        }
    }

    fn from_wire(v: u8) -> Option<Self> {
        match v {
            1 => Some(CopyMode::Push),
            2 => Some(CopyMode::Pull),
            _ => None,
        }
    }
}

impl std::fmt::Display for CopyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CopyMode::Push => "push",
            CopyMode::Pull => "pull",
        })
    }
}

/// Lifecycle state of a copy, as reported in [`CopyStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyState {
    /// The node does not know this copy id (never submitted, or
    /// already reaped).
    Unknown,
    /// Submitted; the outbound handshake toward the remote node is
    /// still being retransmitted.
    Handshaking,
    /// The remote echoed the handshake; the data engine is running.
    Running,
    /// The outbound transfer completed and (for pulls) the blob is
    /// stored.
    Done,
    /// The copy failed; [`CopyStatus::error`] says why.
    Failed,
}

impl CopyState {
    fn to_wire(self) -> u8 {
        match self {
            CopyState::Unknown => 0,
            CopyState::Handshaking => 1,
            CopyState::Running => 2,
            CopyState::Done => 3,
            CopyState::Failed => 4,
        }
    }

    fn from_wire(v: u8) -> Option<Self> {
        match v {
            0 => Some(CopyState::Unknown),
            1 => Some(CopyState::Handshaking),
            2 => Some(CopyState::Running),
            3 => Some(CopyState::Done),
            4 => Some(CopyState::Failed),
            _ => None,
        }
    }

    /// Whether this state is final (the copy will make no more
    /// progress).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            CopyState::Done | CopyState::Failed | CopyState::Unknown
        )
    }
}

impl std::fmt::Display for CopyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CopyState::Unknown => "unknown",
            CopyState::Handshaking => "handshaking",
            CopyState::Running => "running",
            CopyState::Done => "done",
            CopyState::Failed => "failed",
        })
    }
}

/// Error codes carried by [`CopyStatus::error`].
pub mod errcode {
    /// No error.
    pub const NONE: u8 = 0;
    /// The named blob is not in the source store.
    pub const NOT_FOUND: u8 = 1;
    /// The node is at its concurrent-copy capacity.
    pub const BUSY: u8 = 2;
    /// The remote node never echoed the outbound handshake.
    pub const HANDSHAKE_TIMEOUT: u8 = 3;
    /// The outbound data transfer failed (engine gave up).
    pub const TRANSFER_FAILED: u8 = 4;
    /// The submit message itself was malformed or unsupported.
    pub const MALFORMED: u8 = 5;

    /// A short label for diagnostics.
    pub fn label(code: u8) -> &'static str {
        match code {
            NONE => "ok",
            NOT_FOUND => "blob not found",
            BUSY => "node busy",
            HANDSHAKE_TIMEOUT => "remote handshake timeout",
            TRANSFER_FAILED => "transfer failed",
            MALFORMED => "malformed submit",
            _ => "unknown error",
        }
    }
}

/// A copy order: "move blob `name` between yourself and `remote`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopySubmit {
    /// Which way the bytes flow relative to the submitted-to node.
    pub mode: CopyMode,
    /// The far node of the node-to-node leg.
    pub remote: SocketAddr,
    /// The orchestrating client's trace epoch as nanoseconds since the
    /// Unix epoch — carried in the handshake so the node can log a
    /// clock-offset event and one Perfetto view lines up spans across
    /// hosts.  Zero when the client records no telemetry.
    pub epoch_ns: u64,
    /// The blob to move.
    pub name: String,
}

/// A status reply: the copy's lifecycle state plus progress and the
/// source blob's digest, so the client can verify the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyStatus {
    /// Lifecycle state.
    pub state: CopyState,
    /// One of [`errcode`]'s codes (meaningful when `state` is
    /// [`CopyState::Failed`]).
    pub error: u8,
    /// Bytes moved so far (estimated from engine counters while
    /// running; exact once done).
    pub bytes_done: u64,
    /// Total bytes the copy will move (0 until known).
    pub bytes_total: u64,
    /// CRC-32 of the source blob (0 until known) — compare against the
    /// sink's [`BlobDigest`] to byte-verify without re-reading.
    pub crc32: u32,
}

/// A digest reply: whether the node holds `name`, and its length and
/// CRC-32 if so.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobDigest {
    /// Whether the blob exists in this node's store.
    pub found: bool,
    /// Blob length in bytes (0 when not found).
    pub len: u64,
    /// CRC-32 of the blob (0 when not found).
    pub crc32: u32,
}

/// Operation discriminants (first payload byte).
mod op {
    pub const SUBMIT: u8 = 1;
    pub const QUERY: u8 = 2;
    pub const STATUS: u8 = 3;
    pub const DIGEST: u8 = 4;
    pub const DIGEST_REPLY: u8 = 5;
}

/// Any message that rides a `Copy` datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopyMsg {
    /// Client → node: start a copy (idempotent; a duplicate submit for
    /// a known copy id just re-reports its status).
    Submit(CopySubmit),
    /// Client → node: report the copy's current status.
    Query,
    /// Node → client: the status reply.
    Status(CopyStatus),
    /// Client → node: report whether you hold `name`, with its digest.
    Digest {
        /// The blob to describe.
        name: String,
    },
    /// Node → client: the digest reply.
    DigestReply(BlobDigest),
}

impl CopyMsg {
    /// Encode to the wire payload.  Control-plane messages are small
    /// and rare, so a fresh `Vec` is fine here — the data path never
    /// goes through this module.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            CopyMsg::Submit(s) => {
                debug_assert!(s.name.len() <= MAX_NAME_LEN, "blob name too long");
                out.push(op::SUBMIT);
                out.push(s.mode.to_wire());
                match s.remote.ip() {
                    IpAddr::V4(ip) => {
                        out.push(4);
                        out.extend_from_slice(&ip.octets());
                    }
                    IpAddr::V6(ip) => {
                        out.push(6);
                        out.extend_from_slice(&ip.octets());
                    }
                }
                out.extend_from_slice(&s.remote.port().to_be_bytes());
                out.extend_from_slice(&s.epoch_ns.to_be_bytes());
                out.extend_from_slice(&(s.name.len() as u16).to_be_bytes());
                out.extend_from_slice(s.name.as_bytes());
            }
            CopyMsg::Query => out.push(op::QUERY),
            CopyMsg::Status(st) => {
                out.push(op::STATUS);
                out.push(st.state.to_wire());
                out.push(st.error);
                out.extend_from_slice(&st.bytes_done.to_be_bytes());
                out.extend_from_slice(&st.bytes_total.to_be_bytes());
                out.extend_from_slice(&st.crc32.to_be_bytes());
            }
            CopyMsg::Digest { name } => {
                debug_assert!(name.len() <= MAX_NAME_LEN, "blob name too long");
                out.push(op::DIGEST);
                out.extend_from_slice(&(name.len() as u16).to_be_bytes());
                out.extend_from_slice(name.as_bytes());
            }
            CopyMsg::DigestReply(d) => {
                out.push(op::DIGEST_REPLY);
                out.push(u8::from(d.found));
                out.extend_from_slice(&d.len.to_be_bytes());
                out.extend_from_slice(&d.crc32.to_be_bytes());
            }
        }
        out
    }

    /// Decode from a wire payload.  Total: no input panics.  Returns
    /// `None` on unknown operations, truncated or oversized fields, and
    /// trailing bytes — callers treat all of those as an unknown copy.
    pub fn decode(p: &[u8]) -> Option<CopyMsg> {
        let (&opcode, rest) = p.split_first()?;
        match opcode {
            op::SUBMIT => {
                let (&mode, rest) = rest.split_first()?;
                let mode = CopyMode::from_wire(mode)?;
                let (&family, rest) = rest.split_first()?;
                let addr_len = match family {
                    4 => 4,
                    6 => 16,
                    _ => return None,
                };
                if rest.len() < addr_len {
                    return None;
                }
                let (addr_bytes, rest) = rest.split_at(addr_len);
                let ip: IpAddr = if family == 4 {
                    let o: [u8; 4] = addr_bytes.try_into().ok()?;
                    IpAddr::from(o)
                } else {
                    let o: [u8; 16] = addr_bytes.try_into().ok()?;
                    IpAddr::from(o)
                };
                if rest.len() < 2 + 8 + 2 {
                    return None;
                }
                let port = u16::from_be_bytes(rest[0..2].try_into().ok()?);
                let epoch_ns = u64::from_be_bytes(rest[2..10].try_into().ok()?);
                let name_len = u16::from_be_bytes(rest[10..12].try_into().ok()?) as usize;
                let rest = &rest[12..];
                if name_len > MAX_NAME_LEN || rest.len() != name_len {
                    return None;
                }
                let name = std::str::from_utf8(rest).ok()?.to_string();
                Some(CopyMsg::Submit(CopySubmit {
                    mode,
                    remote: SocketAddr::new(ip, port),
                    epoch_ns,
                    name,
                }))
            }
            op::QUERY => rest.is_empty().then_some(CopyMsg::Query),
            op::STATUS => {
                if rest.len() != 2 + 8 + 8 + 4 {
                    return None;
                }
                let state = CopyState::from_wire(rest[0])?;
                Some(CopyMsg::Status(CopyStatus {
                    state,
                    error: rest[1],
                    bytes_done: u64::from_be_bytes(rest[2..10].try_into().ok()?),
                    bytes_total: u64::from_be_bytes(rest[10..18].try_into().ok()?),
                    crc32: u32::from_be_bytes(rest[18..22].try_into().ok()?),
                }))
            }
            op::DIGEST => {
                if rest.len() < 2 {
                    return None;
                }
                let name_len = u16::from_be_bytes(rest[0..2].try_into().ok()?) as usize;
                let rest = &rest[2..];
                if name_len > MAX_NAME_LEN || rest.len() != name_len {
                    return None;
                }
                let name = std::str::from_utf8(rest).ok()?.to_string();
                Some(CopyMsg::Digest { name })
            }
            op::DIGEST_REPLY => {
                if rest.len() != 1 + 8 + 4 {
                    return None;
                }
                Some(CopyMsg::DigestReply(BlobDigest {
                    found: rest[0] != 0,
                    len: u64::from_be_bytes(rest[1..9].try_into().ok()?),
                    crc32: u32::from_be_bytes(rest[9..13].try_into().ok()?),
                }))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: CopyMsg) {
        let bytes = msg.encode();
        assert_eq!(CopyMsg::decode(&bytes), Some(msg));
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(CopyMsg::Submit(CopySubmit {
            mode: CopyMode::Push,
            remote: "127.0.0.1:47611".parse().unwrap(),
            epoch_ns: 1_754_000_000_000_000_000,
            name: "blob-α".into(),
        }));
        roundtrip(CopyMsg::Submit(CopySubmit {
            mode: CopyMode::Pull,
            remote: "[::1]:9".parse().unwrap(),
            epoch_ns: 0,
            name: String::new(),
        }));
        roundtrip(CopyMsg::Query);
        roundtrip(CopyMsg::Status(CopyStatus {
            state: CopyState::Running,
            error: errcode::NONE,
            bytes_done: 123_456,
            bytes_total: 1 << 40,
            crc32: 0xdead_beef,
        }));
        roundtrip(CopyMsg::Digest {
            name: "replica".into(),
        });
        roundtrip(CopyMsg::DigestReply(BlobDigest {
            found: true,
            len: 300_000,
            crc32: 7,
        }));
        roundtrip(CopyMsg::DigestReply(BlobDigest {
            found: false,
            len: 0,
            crc32: 0,
        }));
    }

    #[test]
    fn decode_rejects_unknown_op_truncation_and_trailers() {
        assert_eq!(CopyMsg::decode(&[]), None);
        assert_eq!(CopyMsg::decode(&[0]), None);
        assert_eq!(CopyMsg::decode(&[99, 1, 2, 3]), None);
        // Truncation at every prefix of a valid submit.
        let full = CopyMsg::Submit(CopySubmit {
            mode: CopyMode::Push,
            remote: "10.0.0.9:4242".parse().unwrap(),
            epoch_ns: 42,
            name: "x".into(),
        })
        .encode();
        for len in 0..full.len() {
            assert_eq!(CopyMsg::decode(&full[..len]), None, "prefix {len}");
        }
        // Trailing garbage rejects.
        let mut noisy = full.clone();
        noisy.push(0);
        assert_eq!(CopyMsg::decode(&noisy), None);
        let mut q = CopyMsg::Query.encode();
        q.push(1);
        assert_eq!(CopyMsg::decode(&q), None);
    }

    #[test]
    fn decode_rejects_bad_fields() {
        // Bad mode.
        let mut m = CopyMsg::Submit(CopySubmit {
            mode: CopyMode::Push,
            remote: "10.0.0.9:4242".parse().unwrap(),
            epoch_ns: 0,
            name: "x".into(),
        })
        .encode();
        m[1] = 9;
        assert_eq!(CopyMsg::decode(&m), None);
        // Bad address family.
        let mut m = CopyMsg::Submit(CopySubmit {
            mode: CopyMode::Push,
            remote: "10.0.0.9:4242".parse().unwrap(),
            epoch_ns: 0,
            name: "x".into(),
        })
        .encode();
        m[2] = 5;
        assert_eq!(CopyMsg::decode(&m), None);
        // Bad status state.
        let mut m = CopyMsg::Status(CopyStatus {
            state: CopyState::Done,
            error: 0,
            bytes_done: 0,
            bytes_total: 0,
            crc32: 0,
        })
        .encode();
        m[1] = 200;
        assert_eq!(CopyMsg::decode(&m), None);
        // Non-UTF-8 name.
        let mut m = CopyMsg::Digest { name: "ab".into() }.encode();
        let n = m.len();
        m[n - 1] = 0xff;
        assert_eq!(CopyMsg::decode(&m), None);
    }

    #[test]
    fn decode_is_total_on_garbage() {
        let mut garbage = Vec::with_capacity(256);
        for len in 0..256 {
            garbage.push((len * 71 + 13) as u8);
            let _ = CopyMsg::decode(&garbage);
        }
    }
}
