//! Exporters: JSONL for grepping, Chrome trace-event JSON for Perfetto.
//!
//! The Chrome trace-event format (`{"traceEvents": [...]}`) is what
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly.  [`chrome_trace`] maps the flight recorder's stream onto
//! it with one *process* track per shard and one *thread* track per
//! session, so shard pinning, blast rounds (begin/end spans) and AIMD
//! burst transitions (a counter track per session) are all visible at a
//! glance.  [`ChromeTraceBuilder`] is the reusable JSON core —
//! `blast-sim` uses it to export the paper's simulated Fig. 2/3
//! timelines into the same UI.
//!
//! The workspace builds offline with no serde; both exporters write
//! JSON by hand, mirroring the `perf.rs` harness idiom.

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};

/// Escape a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// One event per line: `{"ts_ns":…,"shard":…,"session":…,"kind":"…",
/// "a":…,"b":…}` — trivially parseable, `grep`- and `jq`-friendly.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        let _ = writeln!(
            out,
            "{{\"ts_ns\":{},\"shard\":{},\"session\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            ev.ts_ns,
            ev.shard,
            ev.session,
            ev.kind.label(),
            ev.a,
            ev.b
        );
    }
    out
}

/// Incremental builder for Chrome trace-event JSON.
///
/// Timestamps are **microseconds** (floats allowed), the format's
/// native unit.  `pid`/`tid` pick the track: Perfetto groups events
/// into one expandable process per `pid` with one thread lane per
/// `tid`; [`process_name`](Self::process_name) and
/// [`thread_name`](Self::thread_name) label them.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> ChromeTraceBuilder {
        ChromeTraceBuilder::default()
    }

    fn push_event(&mut self, ph: char, name: &str, pid: u64, tid: u64, ts_us: f64, extra: &str) {
        let mut ev = String::with_capacity(96 + name.len() + extra.len());
        ev.push_str("{\"name\":\"");
        escape_into(&mut ev, name);
        let _ = write!(
            ev,
            "\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:.3}{extra}}}"
        );
        self.events.push(ev);
    }

    /// A complete (`ph:"X"`) event: a span of `dur_us` starting at
    /// `ts_us`.
    pub fn complete(&mut self, pid: u64, tid: u64, name: &str, ts_us: f64, dur_us: f64) {
        self.push_event('X', name, pid, tid, ts_us, &format!(",\"dur\":{dur_us:.3}"));
    }

    /// A begin (`ph:"B"`) event opening a span; pair with
    /// [`end`](Self::end) on the same track.
    pub fn begin(&mut self, pid: u64, tid: u64, name: &str, ts_us: f64, args: &[(&str, u64)]) {
        self.push_event('B', name, pid, tid, ts_us, &args_json(args));
    }

    /// An end (`ph:"E"`) event closing the innermost open span.
    pub fn end(&mut self, pid: u64, tid: u64, name: &str, ts_us: f64, args: &[(&str, u64)]) {
        self.push_event('E', name, pid, tid, ts_us, &args_json(args));
    }

    /// A thread-scoped instant (`ph:"i"`) event with numeric args.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, ts_us: f64, args: &[(&str, u64)]) {
        let mut extra = String::from(",\"s\":\"t\"");
        extra.push_str(&args_json(args));
        self.push_event('i', name, pid, tid, ts_us, &extra);
    }

    /// A counter (`ph:"C"`) sample — Perfetto renders these as a
    /// stepped value track.
    pub fn counter(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: f64,
        series: &str,
        value: u64,
    ) {
        let mut extra = String::from(",\"args\":{\"");
        escape_into(&mut extra, series);
        let _ = write!(extra, "\":{value}}}");
        self.push_event('C', name, pid, tid, ts_us, &extra);
    }

    /// Label the `pid` track (metadata `process_name` event).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let mut extra = String::from(",\"args\":{\"name\":\"");
        escape_into(&mut extra, name);
        extra.push_str("\"}");
        self.push_event('M', "process_name", pid, 0, 0.0, &extra);
    }

    /// Label the `(pid, tid)` track (metadata `thread_name` event).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut extra = String::from(",\"args\":{\"name\":\"");
        escape_into(&mut extra, name);
        extra.push_str("\"}");
        self.push_event('M', "thread_name", pid, tid, 0.0, &extra);
    }

    /// Events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the final `{"traceEvents": [...]}` document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(ev);
            if i + 1 != self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

fn args_json(args: &[(&str, u64)]) -> String {
    if args.is_empty() {
        return String::new();
    }
    let mut out = String::from(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, k);
        let _ = write!(out, "\":{v}");
    }
    out.push('}');
    out
}

/// Render a drained flight-recorder stream as Chrome trace-event JSON.
///
/// Track layout: `pid` = shard (labelled `shard N`), `tid` = session
/// (labelled `session N`; session 0 — shard-scoped events — becomes the
/// `reactor` lane).  [`EventKind::RoundStart`]/[`EventKind::RoundEnd`]
/// become begin/end spans, [`EventKind::PacerGrow`]/
/// [`EventKind::PacerShrink`] additionally emit a `burst` counter
/// track, and everything else is an instant event carrying `a`/`b` as
/// args.  A [`EventKind::SampleRate`] header (the stream was thinned
/// with `Recorder::sample_every`) annotates the shard track labels so
/// the sparseness is visible in the UI.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut b = ChromeTraceBuilder::new();
    let mut named: Vec<(u16, u32)> = Vec::new();
    let sampled: Option<u64> = events
        .iter()
        .find(|e| e.kind == EventKind::SampleRate)
        .map(|e| e.a);
    for ev in events {
        if !named.iter().any(|&(s, _)| s == ev.shard) {
            let label = match sampled {
                Some(n) => format!("shard {} (sampled 1/{n})", ev.shard),
                None => format!("shard {}", ev.shard),
            };
            b.process_name(u64::from(ev.shard), &label);
        }
        if !named.contains(&(ev.shard, ev.session)) {
            let label = if ev.session == 0 {
                "reactor".to_string()
            } else {
                format!("session {}", ev.session)
            };
            b.thread_name(u64::from(ev.shard), u64::from(ev.session), &label);
            named.push((ev.shard, ev.session));
        }
        let pid = u64::from(ev.shard);
        let tid = u64::from(ev.session);
        let ts = ev.ts_ns as f64 / 1e3;
        match ev.kind {
            EventKind::RoundStart => {
                b.begin(
                    pid,
                    tid,
                    &format!("round {}", ev.a),
                    ts,
                    &[("round", ev.a), ("packets", ev.b)],
                );
            }
            EventKind::RoundEnd => {
                b.end(
                    pid,
                    tid,
                    &format!("round {}", ev.a),
                    ts,
                    &[("round", ev.a), ("outcome", ev.b)],
                );
            }
            EventKind::PacerGrow | EventKind::PacerShrink => {
                b.instant(
                    pid,
                    tid,
                    ev.kind.label(),
                    ts,
                    &[("from", ev.a), ("to", ev.b)],
                );
                b.counter(
                    pid,
                    tid,
                    &format!("burst s{}", ev.session),
                    ts,
                    "burst",
                    ev.b,
                );
            }
            EventKind::PaceTarget => {
                // The rate-based pacer's recomputed burst joins the same
                // counter track the AIMD grow/shrink transitions feed, so
                // both modes render as one burst trajectory per session.
                b.instant(
                    pid,
                    tid,
                    ev.kind.label(),
                    ts,
                    &[("burst", ev.a), ("min_rtt_ns", ev.b)],
                );
                b.counter(
                    pid,
                    tid,
                    &format!("burst s{}", ev.session),
                    ts,
                    "burst",
                    ev.a,
                );
            }
            EventKind::RateSample => {
                b.counter(
                    pid,
                    tid,
                    &format!("rate s{}", ev.session),
                    ts,
                    "bytes_per_s",
                    ev.b,
                );
            }
            _ => {
                b.instant(pid, tid, ev.kind.label(), ts, &[("a", ev.a), ("b", ev.b)]);
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, session: u32, shard: u16, kind: EventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            session,
            shard,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let events = [
            ev(1_000, 7, 0, EventKind::SessionAdmit, 0, 64),
            ev(2_000, 7, 0, EventKind::SessionReap, 1, 65536),
        ];
        let out = jsonl(&events);
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("\"kind\":\"session-admit\""));
        assert!(out.contains("\"ts_ns\":2000"));
        for line in out.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_maps_rounds_to_spans() {
        let events = [
            ev(1_000, 7, 2, EventKind::RoundStart, 0, 64),
            ev(5_000, 7, 2, EventKind::RoundEnd, 0, 0),
        ];
        let out = chrome_trace(&events);
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"ph\":\"B\""));
        assert!(out.contains("\"ph\":\"E\""));
        assert!(out.contains("\"name\":\"round 0\""));
        assert!(out.contains("\"pid\":2"));
        assert!(out.contains("\"tid\":7"));
        assert!(out.contains("\"name\":\"shard 2\""));
        assert!(out.contains("\"name\":\"session 7\""));
    }

    #[test]
    fn pacer_transitions_emit_counter_samples() {
        let events = [
            ev(1_000, 3, 0, EventKind::PacerGrow, 32, 64),
            ev(2_000, 3, 0, EventKind::PacerShrink, 64, 32),
        ];
        let out = chrome_trace(&events);
        assert!(out.contains("\"ph\":\"C\""));
        assert!(out.contains("\"burst\":64"));
        assert!(out.contains("\"burst\":32"));
        assert!(out.contains("pacer-grow"));
        assert!(out.contains("pacer-shrink"));
    }

    #[test]
    fn rate_events_feed_the_burst_and_rate_tracks() {
        let events = [
            ev(1_000, 3, 0, EventKind::RateSample, 50_000_000, 60_000_000),
            ev(2_000, 3, 0, EventKind::PaceTarget, 48, 20_000),
        ];
        let out = chrome_trace(&events);
        assert!(out.contains("\"name\":\"rate s3\""));
        assert!(out.contains("\"bytes_per_s\":60000000"));
        assert!(out.contains("\"name\":\"burst s3\""));
        assert!(out.contains("\"burst\":48"));
        assert!(out.contains("pace-target"));
    }

    #[test]
    fn sample_rate_header_annotates_shard_labels() {
        let events = [
            ev(0, 0, 0, EventKind::SampleRate, 8, 0),
            ev(1_000, 7, 0, EventKind::RoundStart, 0, 64),
        ];
        let out = chrome_trace(&events);
        assert!(out.contains("\"name\":\"shard 0 (sampled 1/8)\""));
        let plain = chrome_trace(&events[1..]);
        assert!(plain.contains("\"name\":\"shard 0\""));
    }

    #[test]
    fn session_zero_is_the_reactor_lane() {
        let events = [ev(500, 0, 1, EventKind::ShardTick, 3, 1)];
        let out = chrome_trace(&events);
        assert!(out.contains("\"name\":\"reactor\""));
        assert!(out.contains("\"s\":\"t\""));
    }

    #[test]
    fn builder_escapes_and_balances() {
        let mut b = ChromeTraceBuilder::new();
        assert!(b.is_empty());
        b.complete(1, 2, "copy \"in\"\n", 10.0, 5.0);
        assert_eq!(b.len(), 1);
        let out = b.finish();
        assert!(out.contains("copy \\\"in\\\"\\n"));
        assert!(out.contains("\"dur\":5.000"));
        // Structural sanity: braces and brackets balance.
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, closes);
    }
}
