//! Plain-text table rendering, for regenerating the paper's tables.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// ```
/// use blast_stats::Table;
/// let mut t = Table::new(&["size", "SAW (ms)", "blast (ms)"]);
/// t.row(&["1 KB", "4.1", "4.1"]);
/// t.row(&["64 KB", "250.2", "140.6"]);
/// let s = t.render();
/// assert!(s.contains("64 KB"));
/// assert!(s.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    title: Option<String>,
}

impl Table {
    /// New table with the given column headers.  The first column is
    /// left-aligned, the rest right-aligned (the common numeric layout);
    /// override with [`aligns`](Self::aligns).
    pub fn new(headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            aligns,
            title: None,
        }
    }

    /// Set a title rendered above the table.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_string());
        self
    }

    /// Override the per-column alignments.
    ///
    /// # Panics
    /// Panics if the count differs from the header count.
    pub fn aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Append a row from anything displayable.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                match aligns[i] {
                    Align::Left => line.push_str(&format!("{:<w$}", cells[i])),
                    Align::Right => line.push_str(&format!("{:>w$}", cells[i])),
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

/// Format a millisecond quantity the way the paper prints them
/// (e.g. `4.1`, `141`, `0.82`).
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 10.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["x", "1"]);
        t.row(&["longer-name", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header and rows all have equal width for column 0.
        assert!(lines[0].starts_with("name "));
        assert!(lines[2].starts_with("x "));
        // Right alignment of numbers.
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("123456"));
    }

    #[test]
    fn title_is_rendered_first() {
        let mut t = Table::new(&["a"]).with_title("Table 1: demo");
        t.row(&["1"]);
        assert!(t.render().starts_with("Table 1: demo\n"));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn row_display_and_len() {
        let mut t = Table::new(&["n", "sq"]);
        assert!(t.is_empty());
        t.row_display(&[2, 4]);
        t.row_display(&[3, 9]);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains('9'));
    }

    #[test]
    fn custom_alignment() {
        let mut t = Table::new(&["a", "b"]).aligns(&[Align::Right, Align::Left]);
        t.row(&["1", "x"]);
        t.row(&["22", "yy"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with(" 1"));
    }

    #[test]
    fn fmt_ms_matches_paper_style() {
        assert_eq!(fmt_ms(4.08), "4.08");
        assert_eq!(fmt_ms(57.024), "57.0");
        assert_eq!(fmt_ms(140.6), "141");
        assert_eq!(fmt_ms(0.82), "0.82");
    }
}
