//! Render the paper's Figure 3 timelines for any protocol and size —
//! *why* blast beats stop-and-wait, visible at a glance: in
//! stop-and-wait the two processors' copy rows never overlap in time;
//! in blast mode they do.
//!
//! Usage: `cargo run --release --example timeline -- [saw|sw|blast|dbl] [N]`

use blastlan::core::blast::{BlastReceiver, BlastSender};
use blastlan::core::saw::{SawReceiver, SawSender};
use blastlan::core::window::WindowSender;
use blastlan::core::ProtocolConfig;
use blastlan::sim::{render_timeline, SimConfig, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let proto = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("blast")
        .to_string();
    let n: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .clamp(1, 20);

    let data: Vec<u8> = vec![0u8; n * 1024];
    let mut cfg = ProtocolConfig::default();
    cfg.timeout = std::time::Duration::from_secs(3600).into();

    let sim_cfg = if proto == "dbl" {
        SimConfig::double_buffered().with_trace()
    } else {
        SimConfig::standalone().with_trace()
    };
    let mut sim = Simulator::new(sim_cfg);
    let a = sim.add_host("sender");
    let b = sim.add_host("receiver");
    match proto.as_str() {
        "saw" => {
            sim.attach(a, b, Box::new(SawSender::new(1, data.clone().into(), &cfg)));
            sim.attach(b, a, Box::new(SawReceiver::new(1, data.len(), &cfg)));
        }
        "sw" => {
            sim.attach(
                a,
                b,
                Box::new(WindowSender::new(1, data.clone().into(), &cfg)),
            );
            sim.attach(b, a, Box::new(SawReceiver::new(1, data.len(), &cfg)));
        }
        _ => {
            sim.attach(
                a,
                b,
                Box::new(BlastSender::new(1, data.clone().into(), &cfg)),
            );
            sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
        }
    }
    let report = sim.run();
    println!(
        "{proto} transfer of {n} KB on the paper's hardware: {:.2} ms\n",
        report.elapsed_ms(a, 1).unwrap()
    );
    println!(
        "{}",
        render_timeline(&report.trace, &["sender", "receiver"], 110)
    );
    println!("digits: data packet copies/transmissions (sequence mod 10); 'a': acks.");
    println!("compare `saw` vs `blast`: the copy rows of the two hosts only overlap in blast.");
}
