//! # blast-udp — the blast protocols over real UDP sockets
//!
//! The same sans-I/O engines that reproduce the paper's 1985
//! measurements under `blast-sim` run here over `std::net::UdpSocket`,
//! making them a real, working bulk-transfer transport on today's
//! machines.  UDP is the modern equivalent of the paper's raw
//! data-link-layer access: unreliable, unordered datagrams with no
//! retransmission — exactly the substrate the blast protocols were
//! designed to run on.
//!
//! * [`channel`] — a minimal datagram-channel abstraction over
//!   connected UDP sockets (send / receive-with-timeout);
//! * [`fault`] — a fault-injecting channel wrapper (drop, duplicate,
//!   reorder, corrupt — in the spirit of smoltcp's `--drop-chance` /
//!   `--corrupt-chance` knobs), because loopback UDP is *too* reliable
//!   to exercise retransmission;
//! * [`driver`] — a blocking event loop that runs one engine over a
//!   channel with real (wall-clock) timers;
//! * [`timers`] — the generation-stamped timer wheel behind that loop
//!   (and behind the multi-session `blast-node` server);
//! * [`handshake`] — the pre-allocation `Request` handshake: transfer
//!   length, packet size, strategy, direction and blob name, encoded in
//!   a `Request` packet that is retransmitted until echoed;
//! * [`copy`] — third-party-copy control messages: a client orders one
//!   node to move a named blob directly to/from another node, polls the
//!   copy's status, and digest-verifies the replica;
//! * [`netio`] — the pluggable syscall backend: batched
//!   `sendmmsg`/`recvmmsg` submission with event-driven epoll + timerfd
//!   waits and runtime-probed `UDP_SEGMENT`/`UDP_GRO` segmentation
//!   offload on Linux, a portable single-syscall fallback everywhere
//!   else (force it with `BLAST_NETIO=portable`);
//! * [`gso`] — the sans-I/O coalescer/splitter arithmetic behind that
//!   offload (runs of equal-size datagrams, tail runts, GRO splits);
//! * [`peer`] — one-call bulk transfer: the handshake, then the
//!   configured protocol;
//! * [`sockopt`] — `SO_RCVBUF`/`SO_SNDBUF` growth at socket setup, so a
//!   whole blast round fits in the kernel's queues instead of spilling
//!   (the modern form of the paper's §3 interface errors), plus
//!   `SO_REUSEPORT` socket groups so a sharded node can bind N sockets
//!   on one address and let the kernel's 4-tuple hash spread sessions
//!   across reactor threads.
//!
//! ## Example (two threads over loopback)
//!
//! ```
//! use std::time::Duration;
//! use blast_core::ProtocolConfig;
//! use blast_udp::channel::UdpChannel;
//! use blast_udp::peer::{send_data, recv_data};
//!
//! let (a, b) = UdpChannel::pair().unwrap();
//! let mut cfg = ProtocolConfig::default();
//! cfg.timeout = Duration::from_millis(20).into();
//! let data: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
//!
//! let cfg2 = cfg.clone();
//! let sender = std::thread::spawn(move || send_data(a, 7, &data, &cfg2).unwrap());
//! let received = recv_data(b, &cfg).unwrap();
//! sender.join().unwrap();
//! assert_eq!(received.data.len(), 100_000);
//! ```

// Deny (not forbid): `sockopt` and `netio` contain this crate's two
// sanctioned `unsafe` surfaces — audited FFI for socket-buffer tuning
// and for the batched syscall backend — each opting in with a
// module-level allow, mirroring the `blast-counting-alloc` precedent.
// Everything else still refuses unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod copy;
pub mod driver;
pub mod fault;
pub mod fcs;
pub mod gso;
pub mod handshake;
pub mod netio;
pub mod peer;
pub mod sockopt;
pub mod timers;

pub use channel::{Channel, UdpChannel};
pub use copy::{BlobDigest, CopyMode, CopyMsg, CopyState, CopyStatus, CopySubmit};
pub use driver::Driver;
pub use fault::{FaultConfig, FaultyChannel, GilbertElliott};
pub use fcs::FcsChannel;
pub use handshake::{Direction, Request};
pub use netio::{BackendKind, NetIo, NetIoStats};
pub use peer::{recv_data, send_data, TransferReport};
pub use timers::TimerWheel;
