//! The node: N reactor shards on one address, many concurrent
//! transfers.
//!
//! The paper's engines move one transfer at a time; a node multiplexes
//! many.  Each reactor shard is a thread that owns one non-blocking
//! `UdpSocket` and runs the classic cycle:
//!
//! 1. fire due timers from a [`TimerWheel`] keyed by
//!    `(transfer_id, TimerToken)` — each session's engine timers plus
//!    two node-owned timers per session (linger-reap and give-up);
//! 2. drain the socket, routing `Request` packets to the handshake
//!    logic and everything else through the [`Demux`] to the owning
//!    engine;
//! 3. execute whatever actions the engines emitted (transmissions go
//!    out `send_to` the session's peer, wrapped in the FCS trailer);
//! 4. if nothing happened, park briefly — `std` has no selector, and
//!    at the timescales the paper measures (1.35 ms of processor time
//!    *per packet*) sub-millisecond parking is invisible.
//!
//! [`NodeBuilder`] scales that cycle across cores: with `shards(n)` it
//! binds `n` `SO_REUSEPORT` sockets on one address and the kernel's
//! 4-tuple hash pins every remote endpoint — hence every session — to
//! exactly one shard.  Shards share nothing on the packet path: each
//! has its own [`NetIo`] backend, timer wheel, session table, buffer
//! pool, and a plain (unlocked) [`NodeMetrics`] accumulator that it
//! publishes into a shared snapshot slot once per tick; the
//! [`NodeHandle`] merges those snapshots on read.  Only the blob store
//! is shared, and it is touched only at session boundaries.
//!
//! Sessions are created by the `Request` pre-allocation handshake from
//! `blast-udp`: a push request allocates a [`BlastReceiver`] for the
//! announced length before any data arrives (the paper's premise), a
//! pull request looks the named blob up in the
//! [`Store`](crate::store::Store) and blasts it back with the strategy
//! the client asked for.  Finished engines linger briefly — a finished
//! receiver must keep re-acking duplicates or a lost final ack strands
//! its peer (§3.2.2's tail problem) — and are then reaped from the
//! demux table.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use blast_core::api::{Action, CompletionInfo, TimerToken};
use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::ProtocolConfig;
use blast_core::demux::Demux;
use blast_core::multiblast::MultiBlastSender;
use blast_core::pool::BufferPool;
use blast_core::{AdaptiveTimeout, Engine, PacingConfig};
use blast_telemetry::{EventKind, Recorder, Telemetry};
use blast_udp::channel::MAX_DATAGRAM;
use blast_udp::fcs;
use blast_udp::handshake::{Direction, Request};
use blast_udp::netio::NetIo;
use blast_udp::sockopt;
use blast_udp::timers::TimerWheel;
use blast_wire::header::PacketKind;
use blast_wire::packet::{Datagram, DatagramBuilder};

use crate::metrics::{NodeMetrics, SessionReport, ShardReport};
use crate::store::{shared_store, SharedStore};

/// Reap a finished session's engine after the linger period.
const REAP: TimerToken = TimerToken(u64::MAX);
/// Abandon a session whose peer went silent.
const GIVE_UP: TimerToken = TimerToken(u64::MAX - 1);

/// How long a shard may sit on counter-only metric changes before
/// republishing its snapshot.  Session events (accept, finish, reject)
/// publish immediately; pure datagram counters may lag by this much.
const PUBLISH_INTERVAL: Duration = Duration::from_millis(1);

/// Tunables for one node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Address to bind (use port 0 for an ephemeral port).
    pub bind: SocketAddr,
    /// Reactor shards.  `1` is the classic single-threaded node; more
    /// bind an `SO_REUSEPORT` socket group so the kernel spreads
    /// sessions across threads.  Platforms without reuseport groups
    /// (non-Linux) fall back to one shard.
    pub shards: usize,
    /// Base protocol parameters for server-side engines.  Packet size,
    /// strategy and multiblast chunk are overridden per session by the
    /// client's request; timeout and retry limits are the node's.
    pub protocol: ProtocolConfig,
    /// How long a finished engine keeps answering duplicates before it
    /// is reaped (the tail-ack insurance of §3.2.2).  This is a *quiet*
    /// window: traffic for the session restarts it, so a peer still
    /// retransmitting — its copy of our final ack was lost — keeps the
    /// engine alive until it converges (bounded by
    /// [`session_timeout`](NodeConfig::session_timeout)).  Must exceed
    /// the slowest client's retransmission interval.
    pub linger: Duration,
    /// Bound on a session's total lifetime: an engine that has not
    /// completed by then is failed (peer crashed mid-transfer), and a
    /// finished engine still lingering is reaped regardless.
    pub session_timeout: Duration,
    /// Maximum concurrent sessions per shard; requests beyond it are
    /// cancelled.
    pub max_sessions: usize,
    /// Largest transfer a push request may announce.  The handshake
    /// pre-allocates the whole receive buffer from the wire-supplied
    /// length (the paper's premise), so without a bound one spoofed
    /// datagram could demand a terabyte allocation.
    pub max_transfer_bytes: usize,
}

impl Default for NodeConfig {
    fn default() -> Self {
        let mut protocol = ProtocolConfig::default();
        // Server-side transmission control: loopback/LAN round trips are
        // far below the paper's 173 ms To(D), so let the Jacobson/Karn
        // estimator find the real RTT (seeded at 25 ms), and pace blast
        // rounds so a pull does not dump a whole round into the
        // client's receive buffer in one scheduler quantum.
        protocol.timeout = blast_core::AdaptiveTimeout::lan();
        protocol.pacing = blast_core::PacingConfig::lan();
        protocol.max_retries = 1000;
        NodeConfig {
            bind: "127.0.0.1:0".parse().expect("literal addr"),
            shards: 1,
            protocol,
            linger: Duration::from_millis(250),
            session_timeout: Duration::from_secs(30),
            max_sessions: 1024,
            max_transfer_bytes: 256 * 1024 * 1024,
        }
    }
}

/// Node-side state for one transfer (the engine itself lives in the
/// demux table under the same id).
#[derive(Debug)]
struct Session {
    peer: SocketAddr,
    direction: Direction,
    name: String,
    /// The echo datagram, re-sent verbatim for duplicate requests.
    echo: Vec<u8>,
    started: Instant,
    finished: bool,
}

/// One reactor shard: a socket, an event loop, and the sessions the
/// kernel's 4-tuple hash routed to it.
///
/// This is the pre-sharding `NodeServer`, unchanged in behaviour; a
/// single-shard node *is* one of these.  Construct it through
/// [`NodeBuilder`] — the deprecated [`bind`](NodeServer::bind) /
/// [`bind_with_store`](NodeServer::bind_with_store) shims remain for
/// one release for callers that drive the loop inline.
pub struct NodeServer {
    socket: UdpSocket,
    /// The syscall backend: batched `recvmmsg` drains and `sendmmsg`
    /// bursts with event-driven idle waits where available, the
    /// portable single-syscall fallback elsewhere.
    io: NetIo,
    config: NodeConfig,
    store: SharedStore,
    /// The shard's own accumulator: plain fields, no lock — only this
    /// reactor thread touches it, so per-datagram accounting is a bare
    /// integer increment.
    local: NodeMetrics,
    /// The published snapshot the owning [`NodeHandle`] reads.  Written
    /// by [`publish_metrics`](NodeServer::publish_metrics) at most once
    /// per tick — never from the per-datagram path.
    slot: Arc<Mutex<NodeMetrics>>,
    shutdown: Arc<AtomicBool>,
    demux: Demux,
    sessions: HashMap<u32, Session>,
    timers: TimerWheel<(u32, TimerToken)>,
    /// Epoch for the engines' sans-I/O clock ([`Engine::set_now`]):
    /// every engine in the session table shares this zero point, so the
    /// adaptive RTO's round-trip samples are plain differences.
    epoch: Instant,
    /// Reused datagram receive buffer (one per shard, not one per tick).
    recv_buf: Vec<u8>,
    /// Reused FCS framing scratch for outgoing datagrams.
    frame_buf: Vec<u8>,
    /// Reused engine-action sink: taken for the duration of an engine
    /// call, drained by [`execute`](NodeServer::execute), put back.
    scratch: Vec<Action>,
    /// Session-event count (accepts, finishes, rejects) at the last
    /// publish: any change republishes immediately so waiters see
    /// session state without polling lag.
    published_events: u64,
    last_publish: Instant,
    /// The shard's flight recorder, when the node was built with
    /// telemetry.  Handed to every session engine on admission.
    recorder: Option<Recorder>,
    /// Every shard's snapshot slot (own included), so a `Stats` query
    /// landing on this shard can answer for the whole node.  Empty on
    /// single-reactor shims, where `local` is the whole node.
    peer_slots: Vec<Arc<Mutex<NodeMetrics>>>,
}

impl NodeServer {
    /// Bind a single-shard node with an empty store.
    #[deprecated(since = "0.6.0", note = "use NodeBuilder::new().bind(..).start()")]
    pub fn bind(config: NodeConfig) -> io::Result<Self> {
        Self::single(config, shared_store())
    }

    /// Bind a single-shard node serving (and filling) `store`.
    #[deprecated(
        since = "0.6.0",
        note = "use NodeBuilder::new().bind(..).store(..).start()"
    )]
    pub fn bind_with_store(config: NodeConfig, store: SharedStore) -> io::Result<Self> {
        Self::single(config, store)
    }

    /// One plain-bound reactor: the `shards = 1` compatibility path.
    fn single(config: NodeConfig, store: SharedStore) -> io::Result<Self> {
        let socket = UdpSocket::bind(config.bind)?;
        Self::with_socket(
            config,
            store,
            socket,
            Arc::new(AtomicBool::new(false)),
            false,
        )
    }

    /// Wrap an already-bound socket in a reactor shard.
    fn with_socket(
        config: NodeConfig,
        store: SharedStore,
        socket: UdpSocket,
        shutdown: Arc<AtomicBool>,
        force_portable: bool,
    ) -> io::Result<Self> {
        socket.set_nonblocking(true)?;
        // Grow both socket queues (best effort): a node fans many
        // concurrent pushes into one socket (round-0 loss to a
        // default-sized SO_RCVBUF was the measured goodput ceiling),
        // and batched pull bursts submit whole rounds per sendmmsg.
        blast_udp::sockopt::grow_buffers(&socket);
        // The syscall backend: one recvmmsg per reactor wakeup, one
        // sendmmsg per engine burst, epoll+timerfd idle waits.
        let io = if force_portable {
            NetIo::portable(true)
        } else {
            NetIo::reactor(&socket)
        };
        // Every session's engine on this shard clones `config.protocol`,
        // so they all share this pool; pre-warm it so the first blast
        // round is already allocation free.
        config.protocol.pool.warm(64);
        let mut local = NodeMetrics::default();
        local.netio_backend = io.backend().name().to_string();
        let slot = Arc::new(Mutex::new(local.clone()));
        Ok(NodeServer {
            socket,
            io,
            config,
            store,
            local,
            slot,
            shutdown,
            demux: Demux::new(),
            sessions: HashMap::new(),
            timers: TimerWheel::new(),
            epoch: Instant::now(),
            recv_buf: vec![0u8; MAX_DATAGRAM + 4],
            frame_buf: Vec::new(),
            scratch: Vec::new(),
            published_events: 0,
            last_publish: Instant::now(),
            recorder: None,
            peer_slots: Vec::new(),
        })
    }

    /// Attach the shard's flight recorder.  The recorder's epoch
    /// replaces the engine clock's zero point, so engine `record_at`
    /// stamps and the backend's wall-clock `record` stamps land on one
    /// consistent node-wide timeline.
    fn attach_recorder(&mut self, recorder: Recorder) {
        self.epoch = recorder.epoch();
        self.io.set_recorder(recorder.clone());
        self.recorder = Some(recorder);
    }

    /// The bound address clients should talk to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The blob store this node serves.
    pub fn store(&self) -> SharedStore {
        Arc::clone(&self.store)
    }

    /// A snapshot of this shard's metrics.
    pub fn metrics(&self) -> NodeMetrics {
        self.local.clone()
    }

    /// The flag that stops [`run`](NodeServer::run) when set.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The snapshot slot a [`NodeHandle`] merges on read.
    fn metrics_slot(&self) -> Arc<Mutex<NodeMetrics>> {
        Arc::clone(&self.slot)
    }

    /// Run the event loop until the shutdown flag is set.
    pub fn run(&mut self) -> io::Result<()> {
        let result = self.run_inner();
        // Whatever happened, leave the final state visible to the
        // handle before the thread exits.
        self.publish_now();
        result
    }

    fn run_inner(&mut self) -> io::Result<()> {
        while !self.shutdown.load(Ordering::Relaxed) {
            self.tick()?;
        }
        Ok(())
    }

    /// Run until `n` sessions have finished (completed or failed) and
    /// every engine has been reaped — the "serve a fixed workload then
    /// report" mode the examples and CI smoke test use.
    pub fn run_sessions(&mut self, n: u64) -> io::Result<()> {
        loop {
            self.tick()?;
            if self.sessions.is_empty()
                && self.local.sessions_completed + self.local.sessions_failed >= n
            {
                break;
            }
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
        }
        self.publish_now();
        Ok(())
    }

    /// Move this single shard onto its own thread, returning a handle.
    #[deprecated(since = "0.6.0", note = "use NodeBuilder::new().start()")]
    pub fn spawn(self) -> io::Result<NodeHandle> {
        let addr = self.local_addr()?;
        let store = self.store();
        let slots = vec![self.metrics_slot()];
        let shutdown = self.shutdown_flag();
        let mut server = self;
        let thread = std::thread::Builder::new()
            .name("blast-node-0".into())
            .spawn(move || server.run())?;
        Ok(NodeHandle {
            addr,
            store,
            slots,
            shutdown,
            threads: vec![thread],
            telemetry: None,
        })
    }

    /// One reactor cycle: timers, then a socket drain, then a flush of
    /// everything the engines queued, then (if idle) an event-driven
    /// wait — epoll + timerfd wakes on the first datagram or at the
    /// next timer deadline, whichever comes first (the portable
    /// fallback degrades to a bounded sleep).
    fn tick(&mut self) -> io::Result<()> {
        let now = Instant::now();
        let mut timers_fired = 0u64;
        while let Some((id, token)) = self.timers.pop_due(now) {
            timers_fired += 1;
            self.on_timer(id, token)?;
        }
        let drained = self.drain_socket()?;
        // Only ticks that did work are traced — idle wakeups would
        // drown the ring without saying anything.
        if drained > 0 || timers_fired > 0 {
            if let Some(rec) = &self.recorder {
                rec.record(0, EventKind::ShardTick, drained as u64, timers_fired);
            }
        }
        // Everything staged this tick goes out before any wait: one
        // sendmmsg carries the coalesced acks/bursts of all sessions.
        self.io.flush(&self.socket)?;
        self.sync_io_stats();
        self.publish_metrics();
        if drained == 0 {
            let park = self
                .timers
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(5))
                .clamp(PacingConfig::MIN_WAIT, Duration::from_millis(10));
            self.io.wait(park)?;
        }
        Ok(())
    }

    /// Mirror the backend's syscall counters into the shard
    /// accumulator.  The backend is the authority on what actually
    /// reached the kernel: `datagrams_sent` counts flushed submissions
    /// only, so datagrams dropped at flush are never double-booked as
    /// sent.
    fn sync_io_stats(&mut self) {
        let io = self.io.stats;
        self.local.io = io;
        self.local.datagrams_sent = io.datagrams_sent;
        self.local.send_drops = io.send_drops;
    }

    /// Session events since birth: any change means session state moved
    /// and the snapshot must refresh immediately (waiters poll it).
    fn session_events(&self) -> u64 {
        self.local.sessions_accepted
            + self.local.sessions_completed
            + self.local.sessions_failed
            + self.local.rejected_busy
            + self.local.rejected_oversize
            + self.local.pull_misses
            + self.local.collisions
    }

    /// Refresh the published snapshot: immediately on session events,
    /// at most every [`PUBLISH_INTERVAL`] for counter-only drift.  Runs
    /// once per tick, never per datagram, and in steady state (no new
    /// finished sessions) the copy reuses the slot's allocations.
    fn publish_metrics(&mut self) {
        let events = self.session_events();
        if events != self.published_events || self.last_publish.elapsed() >= PUBLISH_INTERVAL {
            self.publish_now();
            self.published_events = events;
        }
    }

    fn publish_now(&mut self) {
        self.local
            .publish_into(&mut self.slot.lock().expect("metrics slot"));
        self.last_publish = Instant::now();
    }

    /// Receive until the socket is dry (or a batch limit, so timers are
    /// never starved by a firehose).  Returns datagrams processed.
    fn drain_socket(&mut self) -> io::Result<usize> {
        // Take/put-back so the shard recycles one receive buffer for
        // its whole lifetime (`on_datagram` needs `&mut self`).
        let mut buf = std::mem::take(&mut self.recv_buf);
        let result = self.drain_socket_into(&mut buf);
        self.recv_buf = buf;
        result
    }

    fn drain_socket_into(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut drained = 0;
        while drained < 128 {
            // Pop from the last recvmmsg batch; refill with one kernel
            // crossing when it runs dry.
            let Some((n, peer)) = self.io.pop_into(buf) else {
                if self.io.fill(&self.socket)? == 0 {
                    break;
                }
                continue;
            };
            let Some(peer) = peer else { continue };
            drained += 1;
            self.local.datagrams_received += 1;
            let Some(body) = fcs::unframe(&buf[..n]) else {
                self.local.fcs_drops += 1;
                continue;
            };
            self.on_datagram(&buf[..body], peer)?;
        }
        Ok(drained)
    }

    fn on_datagram(&mut self, raw: &[u8], peer: SocketAddr) -> io::Result<()> {
        let Ok(dgram) = Datagram::parse(raw) else {
            self.local.malformed += 1;
            return Ok(());
        };
        if dgram.kind == PacketKind::Request {
            return self.on_request(&dgram, raw, peer);
        }
        if dgram.kind == PacketKind::Stats {
            return self.on_stats(&dgram, peer);
        }
        let id = dgram.transfer_id;
        match self.sessions.get(&id) {
            // Only the session's peer may drive its engine.
            Some(s) if s.peer == peer => {
                let now = self.epoch.elapsed();
                let mut sink = std::mem::take(&mut self.scratch);
                if let Some(engine) = self.demux.get_mut(id) {
                    engine.set_now(now);
                    engine.on_datagram(&dgram, &mut sink);
                }
                let executed = self.execute(id, &mut sink);
                sink.clear();
                self.scratch = sink;
                executed?;
                // Traffic for a finished session means the peer has not
                // heard our final ack yet: postpone the reap so the
                // engine stays to re-answer (the linger quiet window).
                if self.sessions.get(&id).is_some_and(|s| s.finished) {
                    self.timers.arm((id, REAP), self.config.linger);
                }
                Ok(())
            }
            _ => {
                self.local.unroutable += 1;
                Ok(())
            }
        }
    }

    fn on_request(&mut self, dgram: &Datagram<'_>, raw: &[u8], peer: SocketAddr) -> io::Result<()> {
        let id = dgram.transfer_id;
        let Some(request) = Request::decode(dgram.payload) else {
            self.local.malformed += 1;
            return Ok(());
        };
        if let Some(session) = self.sessions.get(&id) {
            if session.peer == peer {
                // Duplicate request: our echo was lost; re-send it.
                let echo = session.echo.clone();
                self.send_framed(peer, &echo)?;
            } else {
                // Someone else's id: refuse rather than cross wires.
                self.local.collisions += 1;
                self.send_cancel(id, peer)?;
            }
            return Ok(());
        }
        if self.sessions.len() >= self.config.max_sessions {
            self.local.rejected_busy += 1;
            return self.send_cancel(id, peer);
        }
        // The announced length becomes an eager allocation: bound it
        // before trusting a 24-byte datagram with a terabyte.
        if request.direction == Direction::Push && request.len > self.config.max_transfer_bytes {
            self.local.rejected_oversize += 1;
            return self.send_cancel(id, peer);
        }

        let mut engine_cfg = self.config.protocol.clone();
        request.apply_to(&mut engine_cfg);
        let (engine, echo, announced): (Box<dyn Engine>, Vec<u8>, usize) = match request.direction {
            Direction::Push => {
                // Pre-allocate the whole receive buffer from the
                // announced length — the paper's premise — and echo the
                // request verbatim.
                let engine = BlastReceiver::new(id, request.len, &engine_cfg);
                (Box::new(engine), raw.to_vec(), request.len)
            }
            Direction::Pull => {
                let blob = self.store.get(&request.name);
                let Some(blob) = blob else {
                    self.local.pull_misses += 1;
                    return self.send_cancel(id, peer);
                };
                // Fill the length in before echoing: the echo is the
                // client's size announcement.
                let mut advertised = request.clone();
                advertised.len = blob.len();
                let echo = advertised.build_datagram(id);
                let announced = blob.len();
                let engine: Box<dyn Engine> = if request.multiblast_chunk > 0 {
                    Box::new(MultiBlastSender::new(id, blob, &engine_cfg))
                } else {
                    Box::new(BlastSender::new(id, blob, &engine_cfg))
                };
                (engine, echo, announced)
            }
        };

        self.local.sessions_accepted += 1;
        match request.direction {
            Direction::Push => self.local.pushes += 1,
            Direction::Pull => self.local.pulls += 1,
        }
        self.sessions.insert(
            id,
            Session {
                peer,
                direction: request.direction,
                name: request.name.clone(),
                echo: echo.clone(),
                started: Instant::now(),
                finished: false,
            },
        );
        // Echo before starting the engine so that, in order-preserving
        // conditions, the size announcement precedes round-0 data.
        self.send_framed(peer, &echo)?;
        let mut engine = engine;
        if let Some(rec) = &self.recorder {
            engine.set_recorder(rec.clone());
            let direction = match request.direction {
                Direction::Push => 0,
                Direction::Pull => 1,
            };
            rec.record(id, EventKind::SessionAdmit, direction, announced as u64);
        }
        engine.set_now(self.epoch.elapsed());
        let mut sink = std::mem::take(&mut self.scratch);
        self.demux.register(engine, &mut sink);
        self.timers.arm((id, GIVE_UP), self.config.session_timeout);
        let executed = self.execute(id, &mut sink);
        sink.clear();
        self.scratch = sink;
        executed
    }

    fn on_timer(&mut self, id: u32, token: TimerToken) -> io::Result<()> {
        match token {
            REAP => {
                self.reap(id);
                Ok(())
            }
            GIVE_UP => {
                // The hard bound on session lifetime: fail an engine
                // that never completed, and evict even a finished one
                // whose peer keeps the linger window open forever.
                let timed_out = self.sessions.get(&id).is_some_and(|s| !s.finished);
                if timed_out {
                    let info = self.demux.get(id).map(|e| {
                        CompletionInfo::failure(
                            blast_core::CoreError::BadState {
                                what: "session timed out",
                            },
                            e.stats(),
                        )
                    });
                    if let Some(info) = info {
                        self.finish_session(id, &info);
                    }
                }
                self.reap(id);
                Ok(())
            }
            _ => {
                let now = self.epoch.elapsed();
                let mut sink = std::mem::take(&mut self.scratch);
                if let Some(engine) = self.demux.get_mut(id) {
                    engine.set_now(now);
                    engine.on_timer(token, &mut sink);
                }
                let executed = self.execute(id, &mut sink);
                sink.clear();
                self.scratch = sink;
                executed
            }
        }
    }

    /// Apply one session's engine actions to the world (draining
    /// `actions`, whose capacity the caller reuses).
    fn execute(&mut self, id: u32, actions: &mut Vec<Action>) -> io::Result<()> {
        let Some(peer) = self.sessions.get(&id).map(|s| s.peer) else {
            actions.clear();
            return Ok(());
        };
        let mut completion = None;
        for action in actions.drain(..) {
            match action {
                Action::Transmit(bytes) => self.send_framed(peer, &bytes)?,
                Action::SetTimer { token, after } => self.timers.arm((id, token), after),
                Action::CancelTimer { token } => self.timers.cancel((id, token)),
                Action::Complete(info) => completion = Some(*info),
            }
        }
        if let Some(info) = completion {
            self.finish_session(id, &info);
            // Keep the engine routable through the linger window, then
            // sweep it (completed-engine reaping).
            self.timers.arm((id, REAP), self.config.linger);
        }
        Ok(())
    }

    fn finish_session(&mut self, id: u32, info: &CompletionInfo) {
        let Some(session) = self.sessions.get_mut(&id) else {
            return;
        };
        if session.finished {
            return;
        }
        session.finished = true;
        // GIVE_UP stays armed: it now bounds the linger phase.
        let ok = info.is_success();
        let bytes = *info.result.as_ref().unwrap_or(&0);
        // A completed push becomes a named blob other clients can pull.
        if ok && session.direction == Direction::Push && !session.name.is_empty() {
            if let Some(data) = self.demux.get(id).and_then(Engine::received_data) {
                self.store.put(&session.name, data.to_vec().into());
            }
        }
        let report = SessionReport {
            transfer_id: id,
            direction: session.direction,
            name: session.name.clone(),
            bytes,
            elapsed: session.started.elapsed(),
            stats: info.stats,
            // The AIMD burst trajectory, for paced sender engines: how
            // far the burst grew (or shrank) by the end of the session.
            pacing: self.demux.get(id).and_then(Engine::pacing_snapshot),
            ok,
        };
        self.local.record(report);
        if let Some(rec) = &self.recorder {
            rec.record(id, EventKind::SessionReap, u64::from(ok), bytes as u64);
        }
    }

    /// Answer a control-plane `Stats` query with a whole-node snapshot:
    /// the merged [`NodeMetrics`] summary plus one line per shard.  The
    /// query lands on whichever shard the client's 4-tuple hashes to,
    /// so shards read each other's *published* snapshots (the same ones
    /// a local [`NodeHandle`] merges) rather than anything shared on
    /// the packet path.
    fn on_stats(&mut self, dgram: &Datagram<'_>, peer: SocketAddr) -> io::Result<()> {
        // Cap the reply comfortably inside one datagram.
        const MAX_STATS_PAYLOAD: usize = 8 * 1024;
        // Publish first so the reply reflects this very tick.
        self.publish_now();
        let mut merged = NodeMetrics::default();
        let mut shard_lines = String::new();
        if self.peer_slots.is_empty() {
            merged.merge_from(&self.local);
            shard_lines.push_str(&ShardReport::from_metrics(0, &self.local).summary());
            shard_lines.push('\n');
        } else {
            for (i, slot) in self.peer_slots.iter().enumerate() {
                let m = slot.lock().expect("metrics slot");
                merged.merge_from(&m);
                shard_lines.push_str(&ShardReport::from_metrics(i, &m).summary());
                shard_lines.push('\n');
            }
        }
        let mut text = merged.summary();
        text.push('\n');
        text.push_str(&shard_lines);
        if text.len() > MAX_STATS_PAYLOAD {
            let mut cut = MAX_STATS_PAYLOAD;
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut);
        }
        let mut buf = vec![0u8; blast_wire::HEADER_LEN + text.len()];
        let n = DatagramBuilder::new(dgram.transfer_id)
            .build_stats(&mut buf, dgram.seq, text.as_bytes())
            .expect("stats reply fits");
        self.send_framed(peer, &buf[..n])?;
        if let Some(rec) = &self.recorder {
            rec.record(0, EventKind::StatsServed, text.len() as u64, 0);
        }
        Ok(())
    }

    fn reap(&mut self, id: u32) {
        self.demux.remove(id);
        self.sessions.remove(&id);
        self.timers.forget_where(|&(session, _)| session == id);
    }

    fn send_framed(&mut self, peer: SocketAddr, datagram: &[u8]) -> io::Result<()> {
        // Frame into the shard's reused scratch, then stage into the
        // backend's batch: a whole engine burst goes out in one
        // sendmmsg when the queue fills or the tick flushes.  Loss-like
        // submission failures (peer's ICMP unreachable, full send
        // buffer) are counted as drops inside the backend — the
        // protocols recover by retransmission, so they are not server
        // failures.
        let mut framed = std::mem::take(&mut self.frame_buf);
        fcs::frame_into(datagram, &mut framed);
        let queued = self.io.queue_to(&self.socket, &framed, Some(peer));
        self.frame_buf = framed;
        queued
        // `datagrams_sent` is mirrored from the backend in
        // `sync_io_stats`: only datagrams that actually flushed count.
    }

    fn send_cancel(&mut self, id: u32, peer: SocketAddr) -> io::Result<()> {
        let mut buf = [0u8; blast_wire::HEADER_LEN];
        let n = DatagramBuilder::new(id)
            .build_cancel(&mut buf)
            .expect("cancel fits");
        self.send_framed(peer, &buf[..n])
    }
}

/// Fluent construction of a (possibly sharded) node.
///
/// The one front door to a running node: pick the address, shard
/// count, store and protocol tunables, then [`start`](NodeBuilder::start)
/// to get a [`NodeHandle`].
///
/// ```no_run
/// use blast_node::server::NodeBuilder;
///
/// let node = NodeBuilder::new()
///     .bind("127.0.0.1:0".parse().unwrap())
///     .shards(4)
///     .start()
///     .unwrap();
/// println!("listening on {} across {} shard(s)", node.addr(), node.shards());
/// # node.shutdown().unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct NodeBuilder {
    config: NodeConfig,
    store: Option<SharedStore>,
    portable_netio: bool,
    telemetry_capacity: Option<usize>,
}

impl NodeBuilder {
    /// A builder with [`NodeConfig::default`] settings: one shard on an
    /// ephemeral loopback port, LAN transmission control, a fresh
    /// in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Address to bind (port 0 for ephemeral).
    pub fn bind(mut self, addr: SocketAddr) -> Self {
        self.config.bind = addr;
        self
    }

    /// Reactor shards (clamped to at least 1).  More than one requires
    /// `SO_REUSEPORT` socket groups; on platforms without them the node
    /// silently falls back to a single shard — check
    /// [`NodeHandle::shards`] for the effective count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Serve (and fill) an existing store instead of a fresh one.
    pub fn store(mut self, store: SharedStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Replace the base protocol parameters for server-side engines.
    pub fn protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.config.protocol = protocol;
        self
    }

    /// Retransmission-timeout policy for server-side engines.
    pub fn timeout(mut self, timeout: impl Into<AdaptiveTimeout>) -> Self {
        self.config.protocol.timeout = timeout.into();
        self
    }

    /// Blast-round pacing for server-side sender engines.
    pub fn pacing(mut self, pacing: PacingConfig) -> Self {
        self.config.protocol.pacing = pacing;
        self
    }

    /// Per-packet retry budget for server-side engines.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.protocol.max_retries = retries;
        self
    }

    /// Quiet window a finished engine keeps answering duplicates.
    pub fn linger(mut self, linger: Duration) -> Self {
        self.config.linger = linger;
        self
    }

    /// Hard bound on one session's lifetime.
    pub fn session_timeout(mut self, timeout: Duration) -> Self {
        self.config.session_timeout = timeout;
        self
    }

    /// Maximum concurrent sessions per shard.
    pub fn max_sessions(mut self, sessions: usize) -> Self {
        self.config.max_sessions = sessions;
        self
    }

    /// Largest transfer a push request may announce.
    pub fn max_transfer_bytes(mut self, bytes: usize) -> Self {
        self.config.max_transfer_bytes = bytes;
        self
    }

    /// Replace the whole [`NodeConfig`] (including the shard count).
    pub fn config(mut self, config: NodeConfig) -> Self {
        self.config = config;
        self
    }

    /// Force the portable single-syscall netio backend on every shard,
    /// regardless of platform support for the batched one.
    pub fn portable_netio(mut self) -> Self {
        self.portable_netio = true;
        self
    }

    /// Enable the flight recorder: one bounded ring of `capacity`
    /// events per shard, drained through
    /// [`NodeHandle::drain_trace`].  The record path is lock-free and
    /// allocation-free; on overflow events are dropped and counted
    /// ([`NodeHandle::telemetry_dropped`]), never blocked on.
    pub fn telemetry(mut self, capacity: usize) -> Self {
        self.telemetry_capacity = Some(capacity);
        self
    }

    /// Bind the socket(s), spawn one reactor thread per shard, and
    /// return the control handle.
    ///
    /// With `shards > 1` this binds an `SO_REUSEPORT` group: the first
    /// socket may take an ephemeral port, the rest join it, and the
    /// kernel's 4-tuple hash pins each remote endpoint to one member.
    /// Platforms without reuseport groups fall back to a single shard.
    pub fn start(self) -> io::Result<NodeHandle> {
        let NodeBuilder {
            config,
            store,
            portable_netio,
            telemetry_capacity,
        } = self;
        let store = store.unwrap_or_else(shared_store);
        let shutdown = Arc::new(AtomicBool::new(false));
        let sockets = bind_shard_sockets(config.bind, config.shards.max(1))?;
        let telemetry = telemetry_capacity.map(|cap| Telemetry::new(sockets.len(), cap));
        let mut slots = Vec::with_capacity(sockets.len());
        let mut servers = Vec::with_capacity(sockets.len());
        let mut threads = Vec::with_capacity(sockets.len());
        let mut addr = None;
        for (shard, socket) in sockets.into_iter().enumerate() {
            let mut cfg = config.clone();
            if shard > 0 {
                // Every shard gets its own buffer pool: shard 0 keeps
                // the caller's (shared with whoever else holds it),
                // the rest stay thread-local so checkouts never cross
                // reactor threads.
                let pool = cfg.protocol.pool.clone();
                cfg.protocol = cfg
                    .protocol
                    .with_pool(BufferPool::new(pool.buf_capacity(), pool.max_free()));
            }
            let server = NodeServer::with_socket(
                cfg,
                Arc::clone(&store),
                socket,
                Arc::clone(&shutdown),
                portable_netio,
            )?;
            addr.get_or_insert(server.local_addr()?);
            slots.push(server.metrics_slot());
            servers.push(server);
        }
        // Second pass, once every slot exists: each shard learns all
        // the snapshot slots (so a `Stats` query answers for the whole
        // node) and gets its recorder, then moves onto its thread.
        for (shard, mut server) in servers.into_iter().enumerate() {
            server.peer_slots = slots.clone();
            if let Some(tel) = &telemetry {
                server.attach_recorder(tel.recorder(shard));
            }
            threads.push(
                std::thread::Builder::new()
                    .name(format!("blast-node-{shard}"))
                    .spawn(move || server.run())?,
            );
        }
        Ok(NodeHandle {
            addr: addr.expect("at least one shard"),
            store,
            slots,
            shutdown,
            threads,
            telemetry,
        })
    }
}

/// Bind the socket group for `shards` reactors on `bind`.
///
/// One shard means one plain socket — byte-for-byte the pre-sharding
/// node.  More go through [`sockopt::bind_reuseport`]; if the platform
/// has no reuseport groups the node degrades to one plain socket
/// rather than failing, because a single-shard node is always correct,
/// just not parallel.
fn bind_shard_sockets(bind: SocketAddr, shards: usize) -> io::Result<Vec<UdpSocket>> {
    if shards == 1 {
        return Ok(vec![UdpSocket::bind(bind)?]);
    }
    let first = match sockopt::bind_reuseport(bind) {
        Ok(socket) => socket,
        Err(e) if e.kind() == io::ErrorKind::Unsupported => {
            return Ok(vec![UdpSocket::bind(bind)?]);
        }
        Err(e) => return Err(e),
    };
    // The first member resolves port 0; the rest must name its port.
    let group_addr = first.local_addr()?;
    let mut sockets = vec![first];
    for _ in 1..shards {
        sockets.push(sockopt::bind_reuseport(group_addr)?);
    }
    Ok(sockets)
}

/// A running node: the single control surface returned by
/// [`NodeBuilder::start`].
///
/// Reads merge the per-shard snapshots into one [`NodeMetrics`] (the
/// pre-sharding shape), with [`shard_reports`](NodeHandle::shard_reports)
/// exposing the per-shard breakdown.
pub struct NodeHandle {
    addr: SocketAddr,
    store: SharedStore,
    slots: Vec<Arc<Mutex<NodeMetrics>>>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<io::Result<()>>>,
    telemetry: Option<Telemetry>,
}

impl NodeHandle {
    /// The address clients should talk to (all shards share it).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's blob store.
    pub fn store(&self) -> SharedStore {
        Arc::clone(&self.store)
    }

    /// How many reactor shards are actually running (may be fewer than
    /// requested on platforms without `SO_REUSEPORT` groups).
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The aggregate metrics: every shard's published snapshot, merged.
    pub fn metrics(&self) -> NodeMetrics {
        let mut merged = NodeMetrics::default();
        for slot in &self.slots {
            merged.merge_from(&slot.lock().expect("metrics slot"));
        }
        merged
    }

    /// The flight-recorder handle, when the node was built with
    /// [`NodeBuilder::telemetry`].
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Drain every shard's trace ring into one time-ordered stream
    /// (ready for `blast_telemetry::export::{jsonl, chrome_trace}`).
    /// Empty when telemetry was not enabled.
    pub fn drain_trace(&self) -> Vec<blast_telemetry::TraceEvent> {
        self.telemetry
            .as_ref()
            .map(Telemetry::drain)
            .unwrap_or_default()
    }

    /// Trace events dropped on ring overflow so far (0 without
    /// telemetry).
    pub fn telemetry_dropped(&self) -> u64 {
        self.telemetry.as_ref().map(Telemetry::dropped).unwrap_or(0)
    }

    /// The per-shard breakdown of the same snapshots: did the kernel's
    /// hash actually spread the sessions?
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, slot)| ShardReport::from_metrics(i, &slot.lock().expect("metrics slot")))
            .collect()
    }

    /// Block until no session is in flight on any shard (or `timeout`
    /// passes).
    ///
    /// A client can observe its transfer as complete while its final
    /// ack is still in flight to the node — the receiver side of any
    /// protocol finishes one packet before the sender side hears about
    /// it.  Callers that want every session accounted for (tests,
    /// fixed-workload examples) should drain before
    /// [`shutdown`](NodeHandle::shutdown).
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        self.wait_for(timeout, |m| m.sessions_in_flight() == 0)
    }

    /// Block until `n` sessions have finished (completed or failed)
    /// across all shards and none remain in flight, or `timeout`
    /// passes.  The "serve a fixed workload then report" mode.
    pub fn wait_sessions(&self, n: u64, timeout: Duration) -> bool {
        self.wait_for(timeout, |m| {
            m.sessions_completed + m.sessions_failed >= n && m.sessions_in_flight() == 0
        })
    }

    fn wait_for(&self, timeout: Duration, done: impl Fn(&NodeMetrics) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if done(&self.metrics()) {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stop every shard's event loop, join the threads, and return the
    /// final merged metrics.
    pub fn shutdown(self) -> io::Result<NodeMetrics> {
        self.shutdown.store(true, Ordering::Relaxed);
        let mut first_err = None;
        for thread in self.threads {
            if let Err(e) = thread.join().expect("node shard thread panicked") {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => {
                let mut merged = NodeMetrics::default();
                for slot in &self.slots {
                    merged.merge_from(&slot.lock().expect("metrics slot"));
                }
                Ok(merged)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use blast_udp::channel::UdpChannel;

    fn test_builder() -> NodeBuilder {
        NodeBuilder::new().timeout(Duration::from_millis(15))
    }

    fn client_cfg() -> ProtocolConfig {
        let mut c = ProtocolConfig::default();
        c.timeout = Duration::from_millis(15).into();
        c.max_retries = 1000;
        c
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i.wrapping_mul(131) % 256) as u8).collect()
    }

    /// Shard snapshots refresh per reactor tick, so a client can react
    /// to a datagram a moment before the merged metrics show why it
    /// was sent; poll briefly instead of asserting on the first read.
    fn wait_metric(node: &NodeHandle, cond: impl Fn(&NodeMetrics) -> bool) -> NodeMetrics {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let m = node.metrics();
            if cond(&m) || Instant::now() > deadline {
                return m;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn push_then_pull_roundtrip() {
        let node = test_builder().start().unwrap();
        assert_eq!(node.shards(), 1);
        let cfg = client_cfg();
        let data = payload(100_000);

        let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), node.addr()).unwrap();
        let push = client::push_blob(ch, 1, "hello", &data, &cfg).unwrap();
        assert!(push.stats.data_packets_sent >= 98);

        let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), node.addr()).unwrap();
        let pull = client::pull_blob(ch, 2, "hello", &cfg).unwrap();
        assert_eq!(pull.data, data);

        assert!(node.wait_idle(Duration::from_secs(5)), "tail ack drained");
        let m = node.shutdown().unwrap();
        assert_eq!(m.sessions_completed, 2);
        assert_eq!(m.pushes, 1);
        assert_eq!(m.pulls, 1);
        assert_eq!(m.bytes_received, 100_000);
        assert_eq!(m.bytes_sent, 100_000);
        assert!(m.session_goodput_mbps.mean() > 0.0);
    }

    #[test]
    fn pull_of_missing_blob_is_not_found() {
        let node = test_builder().start().unwrap();
        let cfg = client_cfg();
        let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), node.addr()).unwrap();
        let err = client::pull_blob(ch, 9, "nope", &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let m = wait_metric(&node, |m| m.pull_misses == 1);
        assert_eq!(m.pull_misses, 1);
        assert_eq!(m.sessions_accepted, 0);
        node.shutdown().unwrap();
    }

    #[test]
    fn pre_seeded_store_serves_pulls() {
        let store = shared_store();
        store.put("seeded", payload(30_000).into());
        let node = test_builder().store(store).start().unwrap();
        let cfg = client_cfg();
        let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), node.addr()).unwrap();
        let pull = client::pull_blob(ch, 3, "seeded", &cfg).unwrap();
        assert_eq!(pull.data, payload(30_000));
        node.shutdown().unwrap();
    }

    #[test]
    fn colliding_transfer_id_from_other_peer_is_cancelled() {
        let store = shared_store();
        store.put("blob", payload(200_000).into());
        let node = test_builder().store(store).start().unwrap();
        let cfg = client_cfg();
        // First client opens session 5.
        let addr = node.addr();
        let cfg2 = cfg.clone();
        let t = std::thread::spawn(move || {
            let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), addr).unwrap();
            client::pull_blob(ch, 5, "blob", &cfg2).unwrap()
        });
        // Wait until the node has actually accepted session 5 before
        // contending for the id from a different peer.
        while node.metrics().sessions_accepted == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The contender is refused (Cancel → NotFound) while session 5
        // lives — or, if the first transfer already finished and was
        // reaped, it simply succeeds.  It must never hang or corrupt.
        let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), addr).unwrap();
        match client::pull_blob(ch, 5, "blob", &cfg) {
            Ok(r) => assert_eq!(r.data, payload(200_000)),
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
        }
        let first = t.join().unwrap();
        assert_eq!(first.data, payload(200_000));
        node.shutdown().unwrap();
    }

    #[test]
    fn oversized_push_announcement_is_refused() {
        let node = test_builder()
            .max_transfer_bytes(64 * 1024)
            .start()
            .unwrap();
        let ccfg = client_cfg();
        let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), node.addr()).unwrap();
        let err = client::push_blob(ch, 4, "big", &payload(65 * 1024), &ccfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound, "cancelled, not hung");
        let m = wait_metric(&node, |m| m.rejected_oversize == 1);
        assert_eq!(m.rejected_oversize, 1);
        assert_eq!(m.sessions_accepted, 0, "no buffer was allocated");
        node.shutdown().unwrap();
    }

    #[test]
    fn session_timeout_reaps_abandoned_push() {
        // Drive a single reactor inline through the deprecated shim —
        // the one mode that still exposes engine-table internals — so
        // both the shim and the reap path stay covered.
        #[allow(deprecated)]
        let mut server = NodeServer::bind(
            NodeBuilder::new()
                .timeout(Duration::from_millis(15))
                .session_timeout(Duration::from_millis(80))
                .config,
        )
        .unwrap();
        // Open a push session by hand, then walk away: no data phase.
        let req = Request::push(50_000, &client_cfg(), false).with_name("ghost");
        let dgram = req.build_datagram(77);
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(&fcs::frame(&dgram), server.local_addr().unwrap())
            .unwrap();
        // Serve until the abandoned session fails and is reaped.
        server.run_sessions(1).unwrap();
        let m = server.metrics();
        assert_eq!(m.sessions_accepted, 1);
        assert_eq!(m.sessions_failed, 1, "abandoned session must fail");
        assert_eq!(m.sessions_in_flight(), 0);
        assert!(
            !server.store.contains("ghost"),
            "no blob from a failed push"
        );
        assert_eq!(server.demux.len(), 0, "engine reaped");
        assert_eq!(server.demux.reaped, 1);
    }

    #[test]
    fn builder_defaults_match_node_config() {
        let b = NodeBuilder::new()
            .linger(Duration::from_millis(99))
            .max_sessions(7)
            .session_timeout(Duration::from_secs(3))
            .max_retries(42)
            .pacing(PacingConfig::lan());
        assert_eq!(b.config.linger, Duration::from_millis(99));
        assert_eq!(b.config.max_sessions, 7);
        assert_eq!(b.config.session_timeout, Duration::from_secs(3));
        assert_eq!(b.config.protocol.max_retries, 42);
        assert_eq!(b.config.shards, 1);
    }

    #[test]
    fn sharded_start_accepts_sessions_on_every_requested_shard_count() {
        // On Linux this runs 2 real shards; elsewhere it falls back to
        // one — either way the node must serve correctly.
        let node = test_builder().shards(2).start().unwrap();
        assert!(node.shards() == 2 || !sockopt::reuseport_supported());
        let cfg = client_cfg();
        let data = payload(60_000);
        let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), node.addr()).unwrap();
        client::push_blob(ch, 11, "sharded", &data, &cfg).unwrap();
        let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), node.addr()).unwrap();
        let pull = client::pull_blob(ch, 12, "sharded", &cfg).unwrap();
        assert_eq!(pull.data, data);
        assert!(node.wait_idle(Duration::from_secs(5)));
        let reports = node.shard_reports();
        assert_eq!(reports.len(), node.shards());
        let accepted: u64 = reports.iter().map(|r| r.sessions_accepted).sum();
        assert_eq!(accepted, 2);
        let m = node.shutdown().unwrap();
        assert_eq!(m.sessions_completed, 2);
        assert_eq!(m.bytes_received, 60_000);
        assert_eq!(m.bytes_sent, 60_000);
    }

    #[test]
    fn portable_netio_override_is_honoured() {
        let node = test_builder().portable_netio().start().unwrap();
        let cfg = client_cfg();
        let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), node.addr()).unwrap();
        client::push_blob(ch, 21, "p", &payload(10_000), &cfg).unwrap();
        assert!(node.wait_idle(Duration::from_secs(5)));
        let m = node.shutdown().unwrap();
        assert_eq!(m.netio_backend, "portable");
        assert_eq!(m.sessions_completed, 1);
    }

    #[test]
    fn wait_sessions_counts_across_shards() {
        let node = test_builder().shards(2).start().unwrap();
        let cfg = client_cfg();
        let addr = node.addr();
        let threads: Vec<_> = (0..4u32)
            .map(|i| {
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), addr).unwrap();
                    client::push_blob(ch, 100 + i, &format!("w{i}"), &payload(20_000), &cfg)
                        .unwrap()
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(node.wait_sessions(4, Duration::from_secs(10)));
        let m = node.shutdown().unwrap();
        assert_eq!(m.sessions_completed, 4);
        assert_eq!(m.bytes_received, 4 * 20_000);
    }
}
