//! Seeded multi-trial experiment runner.
//!
//! The paper's method: "for statistical accuracy, the experiment is
//! repeated a number of times and the results are averaged" (§2.1.1).
//! [`Experiment`] runs a closure once per trial with a distinct,
//! deterministic seed and folds the returned measurement into an
//! [`OnlineStats`] (and optionally a [`Histogram`]).

use crate::histogram::Histogram;
use crate::online::OnlineStats;

/// Summary of a finished experiment.
#[derive(Debug, Clone)]
pub struct TrialSummary {
    /// Moments/extrema of the per-trial measurements.
    pub stats: OnlineStats,
    /// Optional distribution of the measurements.
    pub histogram: Option<Histogram>,
    /// Trials that returned `None` (excluded from the stats).
    pub skipped: u64,
}

impl TrialSummary {
    /// Mean of the measurements.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Population standard deviation of the measurements — the paper's
    /// `σ` in §3.2.
    pub fn stddev(&self) -> f64 {
        self.stats.population_stddev()
    }
}

/// A repeatable experiment: `trials` runs of a seeded measurement
/// function.
pub struct Experiment {
    trials: u64,
    base_seed: u64,
    histogram: Option<Histogram>,
}

impl Experiment {
    /// An experiment of `trials` trials derived from `base_seed`.
    ///
    /// Trial `i` receives seed `splitmix64(base_seed + i)`, so trials are
    /// decorrelated but the whole experiment replays exactly from
    /// `base_seed`.
    pub fn new(trials: u64, base_seed: u64) -> Self {
        assert!(trials > 0, "at least one trial");
        Experiment {
            trials,
            base_seed,
            histogram: None,
        }
    }

    /// Also collect the measurement distribution.
    pub fn with_histogram(mut self, histogram: Histogram) -> Self {
        self.histogram = Some(histogram);
        self
    }

    /// Run the experiment.  `f(trial_index, seed)` returns the trial's
    /// measurement, or `None` to skip (e.g. a failed transfer being
    /// studied separately).
    pub fn run<F: FnMut(u64, u64) -> Option<f64>>(self, mut f: F) -> TrialSummary {
        let mut stats = OnlineStats::new();
        let mut histogram = self.histogram;
        let mut skipped = 0;
        for i in 0..self.trials {
            let seed = splitmix64(self.base_seed.wrapping_add(i));
            match f(i, seed) {
                Some(x) => {
                    stats.push(x);
                    if let Some(h) = histogram.as_mut() {
                        h.record(x);
                    }
                }
                None => skipped += 1,
            }
        }
        TrialSummary {
            stats,
            histogram,
            skipped,
        }
    }
}

/// SplitMix64: the standard seed-sequencing permutation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        let summary = Experiment::new(100, 7).run(|_, seed| {
            assert!(seen.insert(seed), "seed collision");
            Some(seed as f64 % 10.0)
        });
        assert_eq!(summary.stats.count(), 100);

        // Re-running replays the exact same seed sequence.
        let mut second = Vec::new();
        Experiment::new(100, 7).run(|_, seed| {
            second.push(seed);
            Some(0.0)
        });
        let mut first = Vec::new();
        Experiment::new(100, 7).run(|_, seed| {
            first.push(seed);
            Some(0.0)
        });
        assert_eq!(first, second);
    }

    #[test]
    fn skipped_trials_are_counted_not_averaged() {
        let summary = Experiment::new(10, 1).run(|i, _| if i % 2 == 0 { Some(4.0) } else { None });
        assert_eq!(summary.skipped, 5);
        assert_eq!(summary.stats.count(), 5);
        assert_eq!(summary.mean(), 4.0);
        assert_eq!(summary.stddev(), 0.0);
    }

    #[test]
    fn histogram_collects_when_requested() {
        let summary = Experiment::new(50, 3)
            .with_histogram(Histogram::linear(0.0, 50.0, 10))
            .run(|i, _| Some(i as f64));
        let h = summary.histogram.expect("histogram requested");
        assert_eq!(h.count(), 50);
    }

    #[test]
    fn trial_indices_run_in_order() {
        let mut last = None;
        Experiment::new(20, 9).run(|i, _| {
            if let Some(prev) = last {
                assert_eq!(i, prev + 1);
            }
            last = Some(i);
            Some(0.0)
        });
        assert_eq!(last, Some(19));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = Experiment::new(0, 0);
    }
}
