//! # blast-sim — a discrete-event simulator of the paper's testbed
//!
//! Reproduces the machinery of *Zwaenepoel, SIGCOMM 1985*: SUN
//! workstations whose processors copy packets into and out of 3-Com
//! Ethernet interfaces, connected by a 10 Mbit Ethernet.  The protocol
//! engines from `blast-core` run unmodified on top of the simulated
//! hardware — the same state machines that run over real UDP in
//! `blast-udp`.
//!
//! ## Why a simulator
//!
//! The paper's central claim is *architectural*: per-packet processor
//! copies dominate elapsed time on a LAN, so protocols that overlap the
//! two hosts' copies (blast, sliding window) beat protocols that
//! serialize them (stop-and-wait) by ~2×.  That claim is about the
//! interaction of CPU, interface buffer and wire — so the reproduction
//! must model those three resources explicitly.  The simulator is
//! calibrated with the paper's own measured constants (`C`, `Ca`, `T`,
//! `Ta`; Table 2/3) and validated against the closed-form model of
//! §2.1.3 to the nanosecond (see `tests/model_vs_sim.rs`).
//!
//! ## Quick example
//!
//! ```
//! use blast_sim::{SimConfig, Simulator};
//! use blast_core::blast::{BlastReceiver, BlastSender};
//! use blast_core::ProtocolConfig;
//!
//! let mut sim = Simulator::new(SimConfig::standalone());
//! let a = sim.add_host("sun-1");
//! let b = sim.add_host("sun-2");
//! let cfg = ProtocolConfig::default();
//! let data: Vec<u8> = vec![0u8; 64 * 1024];
//! sim.attach(a, b, Box::new(BlastSender::new(1, data.clone().into(), &cfg)));
//! sim.attach(b, a, Box::new(BlastReceiver::new(1, data.len(), &cfg)));
//! let report = sim.run();
//! // §2.1.3: T_B = 64×(C+T) + C + 2Ca + Ta = 140.62 ms.
//! assert_eq!(report.elapsed_ms(a, 1), Some(140.62));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod sim;
pub mod time;
pub mod trace;

pub use config::{LossModel, SimConfig, TimingPolicy};
pub use sim::{Completion, HostStats, SimReport, Simulator};
pub use time::{ms, SimTime};
pub use trace::{render_timeline, to_chrome_trace, Lane, TraceEvent};
