//! Streaming statistics via Welford's algorithm.
//!
//! The variance analysis in §3.2 of the paper is all about first and
//! second moments of elapsed-time distributions; simulated reproductions
//! fold millions of trials through this accumulator.

/// Numerically-stable running mean / variance / extrema.
///
/// ```
/// use blast_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorb one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Absorb every sample of another accumulator (parallel merge,
    /// Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance `σ² = Σ(x−µ)²/n` (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance `s² = Σ(x−µ)²/(n−1)` (0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s/√n`.
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_stddev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest sample (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation `σ/µ` (population), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.population_stddev() / self.mean()
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl core::fmt::Display for OnlineStats {
    /// `n=8 mean=5.000 σ=2.000 min=2.000 max=9.000` — the one-line form
    /// metric dashboards (e.g. the `blast-node` summary) print.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.n == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.3} σ={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.population_stddev(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s: OnlineStats = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_moments() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!(close(s.mean(), 5.0));
        assert!(close(s.population_variance(), 4.0));
        assert!(close(s.population_stddev(), 2.0));
        assert!(close(s.sample_variance(), 32.0 / 7.0));
        assert!(close(s.cv(), 0.4));
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let seq: OnlineStats = all.iter().copied().collect();
        let mut a: OnlineStats = all[..300].iter().copied().collect();
        let b: OnlineStats = all[300..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!(close(a.mean(), seq.mean()));
        assert!(close(a.population_variance(), seq.population_variance()));
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert!(close(s.mean(), before.mean()));
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert!(close(empty.mean(), before.mean()));
        assert_eq!(empty.count(), 3);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Naive sum-of-squares catastrophically cancels here.
        let base = 1e9;
        let s: OnlineStats = [base + 4.0, base + 7.0, base + 13.0, base + 16.0]
            .into_iter()
            .collect();
        assert!(close(s.mean(), base + 10.0));
        assert!(close(s.population_variance(), 22.5));
    }

    #[test]
    fn display_formats_summary_line() {
        assert_eq!(OnlineStats::new().to_string(), "n=0");
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        let line = s.to_string();
        assert!(line.contains("n=8"), "{line}");
        assert!(line.contains("mean=5.000"), "{line}");
        assert!(line.contains("σ=2.000"), "{line}");
    }

    #[test]
    fn standard_error_shrinks_with_n() {
        let mut s = OnlineStats::new();
        for i in 0..100 {
            s.push((i % 10) as f64);
        }
        let se100 = s.standard_error();
        for i in 0..9900 {
            s.push((i % 10) as f64);
        }
        assert!(s.standard_error() < se100 / 5.0);
    }
}
