//! Executable summary of the reproduction: every headline claim of the
//! paper asserted end-to-end through the public `blastlan` facade.
//!
//! These tests are the machine-checked version of EXPERIMENTS.md.

use blastlan::analytic::montecarlo::{simulate, McConfig, Strategy};
use blastlan::analytic::variance::StdDev;
use blastlan::analytic::{CostModel, ErrorFree, ExpectedTime};
use blastlan::core::blast::{BlastReceiver, BlastSender};
use blastlan::core::config::{ProtocolConfig, RetxStrategy};
use blastlan::core::saw::{SawReceiver, SawSender};
use blastlan::core::window::WindowSender;
use blastlan::sim::{SimConfig, Simulator};

fn data(bytes: usize) -> std::sync::Arc<[u8]> {
    (0..bytes)
        .map(|i| (i % 247) as u8)
        .collect::<Vec<u8>>()
        .into()
}

fn sim_elapsed(
    make: impl FnOnce(&mut Simulator, usize, usize, &ProtocolConfig),
    _bytes: usize,
    sim_cfg: SimConfig,
) -> f64 {
    let mut sim = Simulator::new(sim_cfg);
    let a = sim.add_host("a");
    let b = sim.add_host("b");
    let mut cfg = ProtocolConfig::default();
    cfg.timeout = std::time::Duration::from_secs(3600).into();
    make(&mut sim, a, b, &cfg);
    let report = sim.run();
    assert!(report.succeeded(a, 1), "transfer must succeed");
    report.elapsed_ms(a, 1).unwrap()
}

/// §2.1 intro: wire-only arithmetic says the three protocols are within
/// 10 % — 57 024 / 55 764 / 52 551 µs for 64 KB.
#[test]
fn intro_naive_arithmetic() {
    let naive = ErrorFree::new(CostModel::wire_only());
    assert!((naive.naive_saw(64) * 1000.0 - 57_024.0).abs() < 0.5);
    assert!((naive.naive_sliding_window(64) * 1000.0 - 55_764.0).abs() < 0.5);
    assert!((naive.naive_blast(64) * 1000.0 - 52_551.0).abs() < 0.5);
}

/// Table 1 + §2.1.2: the measured picture contradicts the naive one —
/// stop-and-wait takes ~2× blast, because copies dominate.
#[test]
fn table_1_stop_and_wait_doubles_blast() {
    let bytes = 64 * 1024;
    let saw = sim_elapsed(
        |sim, a, b, cfg| {
            sim.attach(a, b, Box::new(SawSender::new(1, data(bytes), cfg)));
            sim.attach(b, a, Box::new(SawReceiver::new(1, bytes, cfg)));
        },
        bytes,
        SimConfig::standalone(),
    );
    let blast = sim_elapsed(
        |sim, a, b, cfg| {
            sim.attach(a, b, Box::new(BlastSender::new(1, data(bytes), cfg)));
            sim.attach(b, a, Box::new(BlastReceiver::new(1, bytes, cfg)));
        },
        bytes,
        SimConfig::standalone(),
    );
    let sw = sim_elapsed(
        |sim, a, b, cfg| {
            sim.attach(a, b, Box::new(WindowSender::new(1, data(bytes), cfg)));
            sim.attach(b, a, Box::new(SawReceiver::new(1, bytes, cfg)));
        },
        bytes,
        SimConfig::standalone(),
    );
    // Exact Table 1 values from the calibrated constants.
    assert_eq!(saw, 250.24);
    assert_eq!(blast, 140.62);
    assert!((sw - 151.16).abs() < 0.25);
    // The paper's phrasing.
    let ratio = saw / blast;
    assert!(
        ratio > 1.7 && ratio < 2.0,
        "\"about twice as much time\": {ratio}"
    );
    assert!(sw > blast && sw / blast < 1.1, "\"slightly inferior\"");
}

/// Table 2: a 1 KB exchange costs 3.91 ms of which 75 % is copying.
#[test]
fn table_2_breakdown() {
    let m = CostModel::standalone_sun();
    let total = 2.0 * m.c_data + m.t_data + 2.0 * m.c_ack + m.t_ack;
    assert!((total - 3.91).abs() < 1e-12);
    let copying = 2.0 * m.c_data + 2.0 * m.c_ack;
    let share = copying / total;
    assert!(share > 0.75 && share < 0.80, "copying share {share}");
}

/// Table 3: V-kernel MoveTo anchors To(1) = 5.9 ms, To(64) = 173 ms.
#[test]
fn table_3_vkernel_anchors() {
    let ef = ErrorFree::new(CostModel::vkernel_sun());
    assert!((ef.saw(1) - 5.87).abs() < 0.05);
    assert!((ef.blast(64) - 172.82).abs() < 0.05);
    // And the engines over the simulator agree exactly.
    let bytes = 64 * 1024;
    let moveto = sim_elapsed(
        |sim, a, b, cfg| {
            let mut cfg = cfg.clone();
            cfg.kernel_flag = true;
            sim.attach(a, b, Box::new(BlastSender::new(1, data(bytes), &cfg)));
            sim.attach(b, a, Box::new(BlastReceiver::new(1, bytes, &cfg)));
        },
        bytes,
        SimConfig::vkernel(),
    );
    assert!((moveto - ef.blast(64)).abs() < 1e-9);
}

/// Figure 4: the protocol ordering and the crossover structure.
#[test]
fn figure_4_ordering() {
    let ef = ErrorFree::new(CostModel::standalone_sun());
    // T_SW − T_B = (N−2)·Ca: the two coincide at N = 2 and separate
    // beyond it.
    assert!((ef.sliding_window(2) - ef.blast(2)).abs() < 1e-12);
    for n in [3u64, 4, 8, 16, 32, 64, 128] {
        let saw = ef.saw(n);
        let sw = ef.sliding_window(n);
        let b = ef.blast(n);
        let dbl = ef.double_buffered(n);
        assert!(saw > sw && sw > b && b > dbl, "N={n}");
    }
}

/// Figure 5: expected time stays on the error-free floor through the
/// LAN error regime, and blast dominates stop-and-wait there.
#[test]
fn figure_5_flat_region_and_dominance() {
    let x = ExpectedTime::new(CostModel::vkernel_sun());
    let t0_d = x.error_free().blast(64);
    let t0_1 = x.error_free().saw(1);
    for p_n in [1e-6, 1e-5, 1e-4] {
        let blast = x.blast_full_retx(64, p_n, t0_d);
        assert!(
            (blast - t0_d) / t0_d < 0.05,
            "p_n={p_n}: still in the flat region"
        );
        let saw = x.saw(64, p_n, 10.0 * t0_1);
        assert!(blast < 0.5 * saw, "p_n={p_n}: blast dominates");
    }
    // The knee: by 1e-2 the penalty is unmistakable.
    assert!(x.blast_penalty(64, 1e-2, t0_d) > 0.5);
}

/// Figure 6: σ ordering — no-NACK ≫ NACK > go-back-n ≥ selective — and
/// the Tr-dependence of strategy 1 vs independence of strategy 2.
#[test]
fn figure_6_sigma_ordering() {
    let s = StdDev::new(CostModel::vkernel_sun());
    let t0_d = s.error_free().blast(64);
    let p_n = 1e-3;
    let sig1 = s.full_no_nack(64, p_n, t0_d);
    let sig2 = s.full_nack(64, p_n, t0_d);
    let mc3 = simulate(
        Strategy::GoBackN,
        &McConfig::paper_default(p_n)
            .with_trials(60_000)
            .with_t_r(t0_d),
    );
    let mc4 = simulate(
        Strategy::Selective,
        &McConfig::paper_default(p_n)
            .with_trials(60_000)
            .with_t_r(t0_d),
    );
    assert!(sig1 > sig2, "{sig1} vs {sig2}");
    assert!(sig2 > mc3.stddev, "{sig2} vs {}", mc3.stddev);
    assert!(
        mc3.stddev >= mc4.stddev * 0.9,
        "{} vs {}",
        mc3.stddev,
        mc4.stddev
    );
    // Strategy 1 scales with Tr; strategy 2 barely moves.
    let sig1_big = s.full_no_nack(64, p_n, 10.0 * t0_d);
    let sig2_big = s.full_nack(64, p_n, 10.0 * t0_d);
    assert!(sig1_big / sig1 > 5.0);
    assert!(sig2_big / sig2 < 2.5);
}

/// §2.1.3: utilization ≈ 38 % at 64 KB; double buffering helps but the
/// processor stays the bottleneck.
#[test]
fn utilization_claims() {
    let ef = ErrorFree::new(CostModel::standalone_sun());
    let u = ef.utilization(64);
    assert!((u - 0.3736).abs() < 0.002);
    let ud = ef.utilization_double_buffered(64);
    assert!(ud > u && ud < 0.75);
}

/// §3.2.4's bottom line, at the engine level: under loss, go-back-n
/// retransmits a suffix, selective retransmits the exact set, full
/// retransmits everything.
#[test]
fn strategy_retransmission_volumes() {
    use blastlan::sim::LossModel;
    let bytes = 64 * 1024;
    let t0_d = ErrorFree::new(CostModel::vkernel_sun()).blast(64);
    let mut volumes = Vec::new();
    for strategy in [
        RetxStrategy::FullNack,
        RetxStrategy::GoBackN,
        RetxStrategy::Selective,
    ] {
        let mut total_retx = 0u64;
        for seed in 0..30u64 {
            let mut sim =
                Simulator::new(SimConfig::vkernel().with_loss(LossModel::iid(5e-3), 7_000 + seed));
            let a = sim.add_host("a");
            let b = sim.add_host("b");
            let mut cfg = ProtocolConfig::default().with_strategy(strategy);
            cfg.max_retries = 1_000_000;
            cfg.timeout = std::time::Duration::from_nanos((t0_d * 1e6) as u64).into();
            sim.attach(a, b, Box::new(BlastSender::new(1, data(bytes), &cfg)));
            sim.attach(b, a, Box::new(BlastReceiver::new(1, bytes, &cfg)));
            let report = sim.run();
            total_retx += report.completions[&(a, 1)]
                .info
                .stats
                .data_packets_retransmitted;
        }
        volumes.push((strategy, total_retx));
    }
    // full ≥ go-back-n ≥ selective in retransmitted volume.
    assert!(volumes[0].1 >= volumes[1].1, "{volumes:?}");
    assert!(volumes[1].1 >= volumes[2].1, "{volumes:?}");
    // And meaningfully so.
    assert!(volumes[0].1 > volumes[2].1 * 3, "{volumes:?}");
}
