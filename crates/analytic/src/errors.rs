//! Expected elapsed times under iid packet loss — §3.1 of the paper.
//!
//! The analysis assumes "packet transmissions are statistically
//! independent events which can fail with probability `p_n`".  A whole
//! attempt then fails with probability `p_c` (2 packets exposed for a
//! stop-and-wait exchange, `D + 1` for a blast), the number of failed
//! attempts is geometric, and each failure costs the failed attempt's
//! time plus the retransmission interval `T_r`.

use crate::cost::CostModel;
use crate::errorfree::ErrorFree;
use crate::geom;

/// Expected-time formulas for transfers of `D` packets at error rate
/// `p_n`, with retransmission interval `t_r` (ms).
#[derive(Debug, Clone, Copy)]
pub struct ExpectedTime {
    ef: ErrorFree,
}

impl ExpectedTime {
    /// Build from a cost model.
    pub fn new(model: CostModel) -> Self {
        ExpectedTime {
            ef: ErrorFree::new(model),
        }
    }

    /// The embedded error-free model.
    pub fn error_free(&self) -> &ErrorFree {
        &self.ef
    }

    /// Failure probability of a 1-packet stop-and-wait exchange:
    /// `p_c = 1 − (1−p_n)²` (data packet and its ack are both exposed).
    pub fn saw_exchange_failure(&self, p_n: f64) -> f64 {
        geom::any_of(p_n, 2)
    }

    /// Failure probability of a `D`-packet blast:
    /// `p_c = 1 − (1−p_n)^(D+1)`.
    pub fn blast_failure(&self, p_n: f64, d: u64) -> f64 {
        geom::any_of(p_n, d + 1)
    }

    /// §3.1.1: expected time of a `D`-packet stop-and-wait transfer,
    /// `T̄ = D × [To(1) + (To(1) + T_r) × p_c/(1−p_c)]`.
    ///
    /// Returns infinity when `p_c = 1` (the transfer can never finish).
    pub fn saw(&self, d: u64, p_n: f64, t_r: f64) -> f64 {
        let p_c = self.saw_exchange_failure(p_n);
        if p_c >= 1.0 {
            return f64::INFINITY;
        }
        let t0 = self.ef.saw(1);
        d as f64 * (t0 + (t0 + t_r) * geom::mean_failures(p_c))
    }

    /// §3.1.2: expected time of a `D`-packet blast with full
    /// retransmission on error,
    /// `T̄ = To(D) + (To(D) + T_r) × p_c/(1−p_c)`.
    pub fn blast_full_retx(&self, d: u64, p_n: f64, t_r: f64) -> f64 {
        let p_c = self.blast_failure(p_n, d);
        if p_c >= 1.0 {
            return f64::INFINITY;
        }
        let t0 = self.ef.blast(d);
        t0 + (t0 + t_r) * geom::mean_failures(p_c)
    }

    /// Expected *extra* time a blast pays over its error-free time, as a
    /// fraction (0 at `p_n = 0`).  Useful for locating the knee of the
    /// Figure-5 curves.
    pub fn blast_penalty(&self, d: u64, p_n: f64, t_r: f64) -> f64 {
        let t0 = self.ef.blast(d);
        (self.blast_full_retx(d, p_n, t_r) - t0) / t0
    }

    /// First-order expected time of a go-back-n blast: each lost data
    /// packet at position `i` forces an extra round sending `D − i`
    /// packets; the NACK arrives one reply-tail after the round.  Valid
    /// for `p_n·D ≪ 1` (the regime of Figure 5's flat region).
    ///
    /// This is *our* extension — the paper only derives expected time
    /// for full retransmission, arguing (§3.1.3) that it is already
    /// near-optimal; this formula quantifies how much closer go-back-n
    /// sits to the floor.
    pub fn blast_gobackn_approx(&self, d: u64, p_n: f64, t_r: f64) -> f64 {
        let m = self.ef.model();
        let t0 = self.ef.blast(d);
        // Mean resend length: losses are uniform over positions, a loss
        // at position i (0-based) forces a round of D−i packets; average
        // (D+1)/2.  Expected lost data packets per pass ≈ p_n·D.
        let mean_round = (d as f64 + 1.0) / 2.0;
        let per_loss = m.blast_send_time(1) * mean_round + m.reply_tail();
        // Lost tail packet or ack ⇒ timeout instead of NACK.
        let timeout_part = 2.0 * p_n * (t_r + m.blast_send_time(1) + m.reply_tail());
        t0 + p_n * d as f64 * per_loss + timeout_part
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vkernel() -> ExpectedTime {
        ExpectedTime::new(CostModel::vkernel_sun())
    }

    #[test]
    fn zero_loss_is_error_free_floor() {
        let x = vkernel();
        for d in [1u64, 16, 64] {
            assert_eq!(x.saw(d, 0.0, 100.0), x.error_free().saw(d));
            assert_eq!(x.blast_full_retx(d, 0.0, 100.0), x.error_free().blast(d));
            assert_eq!(x.blast_penalty(d, 0.0, 10.0), 0.0);
        }
    }

    #[test]
    fn figure_5_flat_region_and_knee() {
        // §3.1.3's parameters: D = 64, To(1) = 5.9, To(D) = 173,
        // p_n between 1e-5 and 1e-4 ("we operate somewhere in the region
        // between 10^-5 and 10^-4").
        let x = vkernel();
        let t0 = x.error_free().blast(64);
        // Flat: at p_n = 1e-5 even Tr = 10×To(D) adds < 1.5 %.
        let t = x.blast_full_retx(64, 1e-5, 10.0 * t0);
        assert!((t - t0) / t0 < 0.015, "penalty {}", (t - t0) / t0);
        // Knee: at p_n = 1e-2 the penalty is large.
        let t = x.blast_full_retx(64, 1e-2, t0);
        assert!((t - t0) / t0 > 0.5);
    }

    #[test]
    fn blast_beats_saw_at_lan_error_rates() {
        // The paper's key comparison: "the expected time of the blast
        // protocol is still notably better than that of the
        // stop-and-wait protocol" in the operating region.
        let x = vkernel();
        let t0_1 = x.error_free().saw(1);
        for p_n in [1e-6, 1e-5, 1e-4, 1e-3] {
            let saw = x.saw(64, p_n, 10.0 * t0_1);
            let blast = x.blast_full_retx(64, p_n, x.error_free().blast(64));
            assert!(blast < saw, "p_n={p_n}: blast {blast} vs saw {saw}");
        }
    }

    #[test]
    fn saw_crosses_blast_at_high_error_rates() {
        // Blast exposes D+1 packets per attempt and repeats *everything*
        // on failure; at extreme p_n stop-and-wait (which only repeats
        // one packet) must win — the crossover motivates §3.2's better
        // strategies.
        let x = vkernel();
        let t0_1 = x.error_free().saw(1);
        let t0_d = x.error_free().blast(64);
        let p_n = 0.05;
        let saw = x.saw(64, p_n, 10.0 * t0_1);
        let blast = x.blast_full_retx(64, p_n, t0_d);
        assert!(
            blast > saw,
            "blast {blast} should exceed saw {saw} at p_n={p_n}"
        );
    }

    #[test]
    fn expected_time_is_monotone_in_pn_and_tr() {
        let x = vkernel();
        let mut prev = 0.0;
        for p_n in [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1] {
            let t = x.blast_full_retx(64, p_n, 173.0);
            assert!(t > prev || p_n == 0.0);
            prev = t;
        }
        assert!(
            x.blast_full_retx(64, 1e-3, 1730.0) > x.blast_full_retx(64, 1e-3, 173.0),
            "longer timeout must cost more"
        );
    }

    #[test]
    fn certain_loss_diverges() {
        let x = vkernel();
        assert_eq!(x.saw(4, 1.0, 1.0), f64::INFINITY);
        assert_eq!(x.blast_full_retx(4, 1.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn gobackn_approx_sits_between_floor_and_full() {
        let x = vkernel();
        let d = 64;
        for p_n in [1e-5, 1e-4, 1e-3] {
            let t0 = x.error_free().blast(d);
            let gbn = x.blast_gobackn_approx(d, p_n, t0);
            let full = x.blast_full_retx(d, p_n, t0);
            assert!(gbn >= t0, "p_n={p_n}");
            assert!(gbn <= full * 1.0001, "p_n={p_n}: gbn {gbn} vs full {full}");
        }
    }
}
