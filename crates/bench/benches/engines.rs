//! Criterion benches for the protocol engines: a full 64 KB transfer
//! through the virtual-time harness (pure state-machine cost, no
//! network, no simulated hardware).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_core::harness::{Harness, LossPlan};
use blast_core::saw::{SawReceiver, SawSender};
use blast_core::window::WindowSender;
use std::sync::Arc;

fn payload(bytes: usize) -> Arc<[u8]> {
    (0..bytes).map(|i| i as u8).collect::<Vec<u8>>().into()
}

fn bench_engines(c: &mut Criterion) {
    const BYTES: usize = 64 * 1024;
    let data = payload(BYTES);
    let mut group = c.benchmark_group("engine_transfer_64k");
    group.throughput(Throughput::Bytes(BYTES as u64));

    for strategy in RetxStrategy::ALL {
        group.bench_function(format!("blast_{strategy}"), |b| {
            b.iter(|| {
                let cfg = ProtocolConfig::default().with_strategy(strategy);
                let mut h = Harness::new(
                    BlastSender::new(1, data.clone(), &cfg),
                    BlastReceiver::new(1, data.len(), &cfg),
                    LossPlan::perfect(),
                );
                black_box(h.run().unwrap())
            })
        });
    }

    group.bench_function("blast_gobackn_10pct_loss", |b| {
        b.iter(|| {
            let mut cfg = ProtocolConfig::default();
            cfg.max_retries = 100_000;
            let mut h = Harness::new(
                BlastSender::new(1, data.clone(), &cfg),
                BlastReceiver::new(1, data.len(), &cfg),
                LossPlan::random(42, 1, 10),
            );
            black_box(h.run().unwrap())
        })
    });

    group.bench_function("stop_and_wait", |b| {
        b.iter(|| {
            let cfg = ProtocolConfig::default();
            let mut h = Harness::new(
                SawSender::new(1, data.clone(), &cfg),
                SawReceiver::new(1, data.len(), &cfg),
                LossPlan::perfect(),
            );
            black_box(h.run().unwrap())
        })
    });

    group.bench_function("sliding_window", |b| {
        b.iter(|| {
            let cfg = ProtocolConfig::default();
            let mut h = Harness::new(
                WindowSender::new(1, data.clone(), &cfg),
                SawReceiver::new(1, data.len(), &cfg),
                LossPlan::perfect(),
            );
            black_box(h.run().unwrap())
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engines
}
criterion_main!(benches);
