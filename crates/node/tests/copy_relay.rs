//! End-to-end third-party copy: a client instructs node A to move a
//! named blob directly to/from node B — the bytes never cross the
//! client — and a 1→3 fan-out replicates one source blob to three
//! nodes with per-replica reports.  Every replica is byte-verified by
//! pulling the blob back out, and both nodes' flight recorders must
//! show the transfer actually ran where the protocol says it did.

use std::time::Duration;

use blast_node::server::NodeBuilder;
use blast_node::{Client, NodeHandle};
use blast_telemetry::{EventKind, Recorder};
use blast_udp::copy::CopyState;

const TRACE_RING: usize = 1 << 14;

fn node() -> NodeHandle {
    NodeBuilder::new()
        .timeout(Duration::from_millis(20))
        .telemetry(TRACE_RING)
        .start()
        .expect("start node")
}

/// A multi-chunk payload: well past one packet_payload, with content
/// that catches reordering or truncation.
fn blob(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect()
}

#[test]
fn push_copy_moves_blob_a_to_b() {
    let a = node();
    let b = node();
    let data = blob(150_000);

    let mut client = Client::connect(a.addr())
        .unwrap()
        .timeout(Duration::from_millis(20))
        .recorder(Recorder::standalone(TRACE_RING));
    client.push("blob", &data).unwrap();

    let report = client.copy_to("blob", b.addr()).unwrap();
    assert_eq!(report.state, CopyState::Done);
    assert_eq!(report.bytes, data.len() as u64);
    assert!(report.verified, "replica digest must match source");
    assert!(
        !report.progress.is_empty(),
        "per-copy progress reports observed"
    );
    assert!(report
        .progress
        .iter()
        .all(|st| st.bytes_done <= st.bytes_total));

    // Byte-verify at the replica: the blob must be pullable from B and
    // identical, even though the client never carried it there.
    let pulled = Client::connect(b.addr())
        .unwrap()
        .timeout(Duration::from_millis(20))
        .pull("blob")
        .unwrap();
    assert_eq!(pulled.data, data);

    // Node A admitted and completed the copy, anchored its clock to
    // the client's epoch, and ran blast rounds for the outbound leg;
    // node B ran blast rounds for the inbound session.  That is the
    // telemetry shape of a genuine node-to-node transfer.
    let trace_a = a.drain_trace();
    let trace_b = b.drain_trace();
    let has = |trace: &[blast_telemetry::TraceEvent], kind: EventKind| {
        trace.iter().any(|e| e.kind == kind)
    };
    assert!(has(&trace_a, EventKind::CopyAdmit), "A records copy-admit");
    assert!(has(&trace_a, EventKind::CopyDone), "A records copy-done");
    assert!(
        has(&trace_a, EventKind::ClockAnchor),
        "A anchors to the client's trace epoch"
    );
    assert!(has(&trace_a, EventKind::RoundStart), "A ran blast rounds");
    assert!(has(&trace_b, EventKind::RoundStart), "B ran blast rounds");
    assert!(has(&trace_b, EventKind::RoundEnd), "B finished its rounds");

    a.shutdown().unwrap();
    let mb = b.shutdown().unwrap();
    assert_eq!(mb.sessions_completed, 2, "copy leg + verification pull");
}

#[test]
fn pull_copy_fetches_blob_from_remote() {
    let a = node();
    let b = node();
    let data = blob(96_000);
    b.store().put("remote-blob", data.clone().into());

    // A starts empty; the client tells it to fetch from B.
    let mut client = Client::connect(a.addr())
        .unwrap()
        .timeout(Duration::from_millis(20));
    let report = client.copy_from("remote-blob", b.addr()).unwrap();
    assert_eq!(report.state, CopyState::Done);
    assert_eq!(report.bytes, data.len() as u64);
    assert!(report.verified);

    assert!(a.store().contains("remote-blob"));
    let pulled = client.pull("remote-blob").unwrap();
    assert_eq!(pulled.data, data);

    let ma = a.shutdown().unwrap();
    assert_eq!(ma.copies_completed, 1);
    b.shutdown().unwrap();
}

#[test]
fn fan_out_replicates_one_source_to_three() {
    let source = node();
    let replicas: Vec<NodeHandle> = (0..3).map(|_| node()).collect();
    let data = blob(120_000);
    source.store().put("gold", data.clone().into());

    let mut client = Client::connect(source.addr())
        .unwrap()
        .timeout(Duration::from_millis(20));
    let addrs: Vec<_> = replicas.iter().map(|r| r.addr()).collect();
    let reports = client.fan_out("gold", &addrs).unwrap();

    assert_eq!(reports.len(), 3, "one report per replica");
    for (report, addr) in reports.iter().zip(&addrs) {
        assert_eq!(report.remote, *addr);
        assert_eq!(report.state, CopyState::Done);
        assert_eq!(report.bytes, data.len() as u64);
        assert!(report.verified, "replica {addr} digest mismatch");
    }

    for replica in replicas {
        let pulled = Client::connect(replica.addr())
            .unwrap()
            .timeout(Duration::from_millis(20))
            .pull("gold")
            .unwrap();
        assert_eq!(pulled.data, data, "replica bytes identical to source");
        replica.shutdown().unwrap();
    }
    let m = source.shutdown().unwrap();
    assert_eq!(m.copies_requested, 3);
    assert_eq!(m.copies_completed, 3);
    assert_eq!(m.copy_bytes_moved, 3 * data.len() as u64);
}

#[test]
fn copy_of_missing_blob_reports_not_found() {
    let a = node();
    let b = node();
    let mut client = Client::connect(a.addr())
        .unwrap()
        .timeout(Duration::from_millis(20));
    let err = client.copy_to("no-such-blob", b.addr()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    let ma = a.shutdown().unwrap();
    assert_eq!(ma.copies_failed, 1);
    b.shutdown().unwrap();
}
