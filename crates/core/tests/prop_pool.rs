//! Property tests for the [`BufferPool`]: random checkout/checkin
//! interleavings must never grow the free list past its bound, never
//! lose or duplicate a buffer (ownership is the double-free guard —
//! these tests verify the accounting that relies on it), and always
//! hand out empty, adequately-sized buffers.

use blast_core::pool::{BufferPool, PooledBuf};
use proptest::prelude::*;

proptest! {
    #[test]
    fn free_list_never_exceeds_bound(
        ops in proptest::collection::vec(any::<u8>(), 1..200),
        max_free in 1usize..16,
    ) {
        let pool = BufferPool::new(64, max_free);
        let mut held: Vec<PooledBuf> = Vec::new();
        for op in ops {
            // Even ops check out, odd ops check the oldest held buffer
            // back in (by dropping it).
            if op % 2 == 0 {
                held.push(pool.checkout());
            } else if !held.is_empty() {
                held.remove(0);
            }
            prop_assert!(pool.free_count() <= max_free,
                "free list grew past its bound");
        }
        drop(held);
        prop_assert!(pool.free_count() <= max_free);
    }

    #[test]
    fn no_buffer_is_lost_or_duplicated(
        ops in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let pool = BufferPool::new(32, 1000);
        let mut held: Vec<PooledBuf> = Vec::new();
        for op in ops {
            if op % 3 != 0 {
                held.push(pool.checkout());
            } else if !held.is_empty() {
                held.remove(0);
            }
            // Conservation: every buffer ever created is either held by
            // us, retained in the free list, or was discarded over the
            // bound (impossible here, bound = 1000 > ops).
            let created = pool.fresh_allocations() as usize;
            let accounted = held.len() + pool.free_count()
                + pool.discarded_checkins() as usize;
            prop_assert_eq!(created, accounted,
                "created buffers must all be held, free, or discarded");
        }
    }

    #[test]
    fn checkouts_are_empty_and_sized(
        sizes in proptest::collection::vec(1usize..1500, 1..50),
    ) {
        let pool = BufferPool::new(1600, 8);
        for size in sizes {
            let mut buf = pool.checkout_zeroed(size);
            prop_assert_eq!(buf.len(), size);
            prop_assert!(buf.iter().all(|&b| b == 0), "zeroed checkout");
            prop_assert!(buf.capacity() >= 1600);
            // Dirty the buffer, return it, and take it again: the pool
            // must clear it.
            buf.fill(0xEE);
            drop(buf);
            let again = pool.checkout();
            prop_assert_eq!(again.len(), 0, "recycled buffers come back empty");
        }
    }

    #[test]
    fn interleaved_use_preserves_contents(
        seeds in proptest::collection::vec(any::<u32>(), 2..20),
    ) {
        // Buffers checked out together must be independent: writing one
        // never corrupts another (a double-free/aliasing bug would).
        let pool = BufferPool::new(64, 8);
        let bufs: Vec<PooledBuf> = seeds
            .iter()
            .map(|&seed| {
                let mut b = pool.checkout();
                b.extend_from_slice(&seed.to_be_bytes());
                b
            })
            .collect();
        for (buf, &seed) in bufs.iter().zip(&seeds) {
            prop_assert_eq!(&buf[..], seed.to_be_bytes());
        }
    }
}
