//! Property tests for the transmission-control layer: the
//! Jacobson/Karn [`RttEstimator`] and the paced-round machinery.
//!
//! The estimator's contract (convergence on steady samples, bounded
//! RTO, monotone backoff) is checked over randomized sample streams;
//! Karn's ambiguity rejection is checked at the engine level, where the
//! rule actually lives.

use std::sync::Arc;
use std::time::Duration;

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::control::{AdaptiveTimeout, PacingConfig, RttEstimator};
use blast_core::{Engine, ProtocolConfig};
use blast_wire::packet::Datagram;
use proptest::prelude::*;

const MIN: Duration = Duration::from_millis(1);
const MAX: Duration = Duration::from_secs(4);

fn adaptive() -> AdaptiveTimeout {
    AdaptiveTimeout::Adaptive {
        initial: Duration::from_millis(100),
        min: MIN,
        max: MAX,
    }
}

proptest! {
    /// Whatever samples arrive, the RTO stays inside the configured
    /// clamp and above the smoothed estimate.
    #[test]
    fn rto_always_within_bounds(
        samples in proptest::collection::vec(1u64..10_000_000, 1..100),
    ) {
        let mut e = RttEstimator::new(&adaptive());
        for us in samples {
            e.sample(Duration::from_micros(us));
            let rto = e.rto();
            prop_assert!(rto >= MIN && rto <= MAX, "rto {rto:?} out of bounds");
            prop_assert!(
                rto >= e.srtt().unwrap().min(MIN),
                "rto below the smoothed estimate"
            );
        }
    }

    /// A constant round-trip time drives SRTT to that value (gain 1/8
    /// per sample, so 100 samples converge far past any tolerance).
    #[test]
    fn constant_rtt_converges(rtt_us in 100u64..1_000_000) {
        let mut e = RttEstimator::new(&adaptive());
        let rtt = Duration::from_micros(rtt_us);
        for _ in 0..100 {
            e.sample(rtt);
        }
        let srtt = e.srtt().expect("sampled");
        let err = srtt.abs_diff(rtt);
        prop_assert!(
            err <= rtt / 100 + Duration::from_micros(1),
            "srtt {srtt:?} should converge to {rtt:?}"
        );
        // With variance decayed, RTO ≈ max(SRTT, min-clamp) — it must
        // never sit below the observed RTT.
        prop_assert!(e.rto() >= srtt);
    }

    /// Backoff is monotone non-decreasing and capped, from any starting
    /// state reached by a random sample prefix.
    #[test]
    fn backoff_is_monotone_and_capped(
        samples in proptest::collection::vec(1u64..1_000_000, 0..20),
        backoffs in 1usize..12,
    ) {
        let mut e = RttEstimator::new(&adaptive());
        for us in samples {
            e.sample(Duration::from_micros(us));
        }
        let mut prev = e.rto();
        for _ in 0..backoffs {
            e.backoff();
            prop_assert!(e.rto() >= prev, "backoff shrank the rto");
            prop_assert!(e.rto() <= MAX, "backoff escaped the cap");
            prev = e.rto();
        }
    }

    /// The fixed (paper) mode never moves, whatever is thrown at it.
    #[test]
    fn fixed_mode_never_moves(
        samples in proptest::collection::vec(1u64..1_000_000, 0..30),
        fixed_ms in 1u64..1000,
    ) {
        let fixed = Duration::from_millis(fixed_ms);
        let mut e = RttEstimator::new(&AdaptiveTimeout::Fixed(fixed));
        for us in samples {
            e.sample(Duration::from_micros(us));
            e.backoff();
            prop_assert_eq!(e.rto(), fixed);
            prop_assert_eq!(e.srtt(), None);
        }
    }

    /// A paced blast round never exceeds the configured burst budget
    /// between pace-timer expirations, for arbitrary geometry.
    #[test]
    fn paced_round_never_exceeds_burst_budget(
        packets in 1u32..120,
        burst in 1u32..20,
    ) {
        let cfg = ProtocolConfig::default()
            .with_pacing(PacingConfig::new(burst, Duration::from_micros(200)));
        let payload: Arc<[u8]> = vec![7u8; packets as usize * 1024].into();
        let mut s = BlastSender::new(1, payload, &cfg);
        let mut actions = Vec::new();
        s.start(&mut actions);
        let mut emitted = 0u32;
        loop {
            let transmits = actions
                .iter()
                .filter(|a| a.as_transmit().is_some())
                .count() as u32;
            prop_assert!(
                transmits <= burst,
                "burst of {transmits} exceeded budget {burst}"
            );
            emitted += transmits;
            let paced = actions.iter().any(|a| matches!(
                a,
                blast_core::Action::SetTimer { token, .. } if *token == blast_core::PACE_TIMER
            ));
            if !paced {
                break;
            }
            actions.clear();
            s.on_timer(blast_core::PACE_TIMER, &mut actions);
        }
        prop_assert_eq!(emitted, packets, "every packet of the round is emitted");
        prop_assert_eq!(s.stats().data_packets_sent, u64::from(packets));
        prop_assert_eq!(s.stats().timeouts, 0, "pace timers are not timeouts");
    }
}

/// Karn at the engine level: an acknowledgement that arrives after the
/// soliciting tail was retransmitted must not be sampled, and the
/// timeout that caused the retransmission must back the RTO off.
#[test]
fn karn_ambiguous_ack_is_rejected_and_rto_backs_off() {
    let cfg = ProtocolConfig::default().with_timeout(AdaptiveTimeout::Adaptive {
        initial: Duration::from_millis(25),
        min: Duration::from_millis(2),
        max: Duration::from_secs(2),
    });
    let payload: Arc<[u8]> = vec![3u8; 4096].into();
    let mut s = BlastSender::new(1, payload.clone(), &cfg);
    let mut r = BlastReceiver::new(1, payload.len(), &cfg);
    let mut actions = Vec::new();
    s.set_now(Duration::ZERO);
    s.start(&mut actions);

    // The whole round is "lost"; the retransmission timer fires.
    s.set_now(Duration::from_millis(25));
    let mut out = Vec::new();
    s.on_timer(blast_core::TimerToken(0), &mut out);
    assert_eq!(
        s.current_rto(),
        Duration::from_millis(50),
        "timeout doubles the RTO"
    );

    // Now deliver everything (original round + re-solicited tail) and
    // feed the positive ack back: Karn says this sample is ambiguous.
    let mut acks = Vec::new();
    for a in actions.iter().chain(out.iter()) {
        if let Some(pkt) = a.as_transmit() {
            let d = Datagram::parse(pkt).unwrap();
            let mut rout = Vec::new();
            r.on_datagram(&d, &mut rout);
            acks.extend(
                rout.iter()
                    .filter_map(|a| a.as_transmit().map(<[u8]>::to_vec)),
            );
        }
    }
    let ack = acks.last().expect("receiver acked the tail");
    s.set_now(Duration::from_millis(26));
    let d = Datagram::parse(ack).unwrap();
    let mut fin = Vec::new();
    s.on_datagram(&d, &mut fin);
    assert!(s.is_finished());
    assert_eq!(s.srtt(), None, "ambiguous round trip must not be sampled");
    assert_eq!(s.current_rto(), Duration::from_millis(50), "backoff sticks");
}

/// The clean-path counterpart: an untroubled round trip is sampled and
/// the RTO becomes a function of the measured RTT, not the seed.
#[test]
fn clean_round_trip_is_sampled() {
    let cfg = ProtocolConfig::default().with_timeout(AdaptiveTimeout::lan());
    let payload: Arc<[u8]> = vec![9u8; 4096].into();
    let mut s = BlastSender::new(1, payload.clone(), &cfg);
    let mut r = BlastReceiver::new(1, payload.len(), &cfg);
    let mut actions = Vec::new();
    s.set_now(Duration::ZERO);
    s.start(&mut actions);
    let mut acks = Vec::new();
    for a in &actions {
        if let Some(pkt) = a.as_transmit() {
            let d = Datagram::parse(pkt).unwrap();
            let mut rout = Vec::new();
            r.on_datagram(&d, &mut rout);
            acks.extend(
                rout.iter()
                    .filter_map(|a| a.as_transmit().map(<[u8]>::to_vec)),
            );
        }
    }
    s.set_now(Duration::from_millis(4));
    let d = Datagram::parse(&acks[0]).unwrap();
    let mut fin = Vec::new();
    s.on_datagram(&d, &mut fin);
    assert!(s.is_finished());
    assert_eq!(s.srtt(), Some(Duration::from_millis(4)));
    // First sample: RTO = SRTT + 4·(SRTT/2) = 3·SRTT.
    assert_eq!(s.current_rto(), Duration::from_millis(12));
}
