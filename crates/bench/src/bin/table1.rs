//! Table 1 — "Standalone Measurements of Error Free Transmissions".
//!
//! The scanned paper's cell values are unreadable; we regenerate the
//! table from the paper's own formulas and calibration constants
//! (Table 2), via both the closed-form model and the discrete-event
//! simulator.  The prose quotes two anchors that the output must (and
//! does) reproduce: a 1 KB reliable exchange ≈ 4 ms, and 64 KB
//! stop-and-wait ≈ 2× blast.

use blast_analytic::{CostModel, ErrorFree};
use blast_bench::{run_transfer, Proto, TABLE_SIZES_KB};
use blast_core::config::RetxStrategy;
use blast_sim::SimConfig;
use blast_stats::table::fmt_ms;
use blast_stats::Table;

fn main() {
    let ef = ErrorFree::new(CostModel::standalone_sun());
    let mut table = Table::new(&[
        "size",
        "SAW model",
        "SAW sim",
        "SW model",
        "SW sim",
        "B model",
        "B sim",
    ])
    .with_title("Table 1: standalone error-free transmission times (ms)");

    for kb in TABLE_SIZES_KB {
        let n = kb as u64;
        let bytes = kb * 1024;
        let saw = run_transfer(Proto::Saw, bytes, SimConfig::standalone(), None).elapsed_ms;
        let sw = run_transfer(Proto::Window, bytes, SimConfig::standalone(), None).elapsed_ms;
        let b = run_transfer(
            Proto::Blast(RetxStrategy::GoBackN),
            bytes,
            SimConfig::standalone(),
            None,
        )
        .elapsed_ms;
        table.row(&[
            &format!("{kb} KB"),
            &fmt_ms(ef.saw(n)),
            &fmt_ms(saw),
            &fmt_ms(ef.sliding_window(n)),
            &fmt_ms(sw),
            &fmt_ms(ef.blast(n)),
            &fmt_ms(b),
        ]);
    }
    println!("{}", table.render());

    let saw64 = ef.saw(64);
    let b64 = ef.blast(64);
    println!("anchors from the paper's prose:");
    println!("  1 KB reliable exchange: model 3.91 ms, observed 4.08 ms (Table 2)");
    println!(
        "  64 KB SAW / blast ratio: {:.2} (\"about twice as much time\")",
        saw64 / b64
    );

    println!();
    println!("naive wire-only estimates (paper §2.1 intro, µs):");
    let naive = ErrorFree::new(CostModel::wire_only());
    let mut t2 = Table::new(&["protocol", "paper", "model"]);
    t2.row(&[
        "stop-and-wait",
        "57024",
        &format!("{:.0}", naive.naive_saw(64) * 1000.0),
    ]);
    t2.row(&[
        "sliding window",
        "55764",
        &format!("{:.0}", naive.naive_sliding_window(64) * 1000.0),
    ]);
    t2.row(&[
        "blast",
        "52551",
        &format!("{:.0}", naive.naive_blast(64) * 1000.0),
    ]);
    println!("{}", t2.render());
}
