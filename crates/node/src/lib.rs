//! # blast-node — a concurrent blast transfer server over UDP
//!
//! The paper's engines move one transfer at a time; this crate serves
//! many at once, which is how modern bulk-transfer services scale: a
//! node multiplexing many simultaneous sessions across N reactor
//! shards, judged on aggregate concurrent throughput.
//!
//! * [`server`] — the node: [`NodeBuilder`] binds one address as an
//!   `SO_REUSEPORT` socket group and spawns one reactor thread per
//!   shard — each a non-blocking `std::net::UdpSocket` event loop with
//!   its own timer wheel keyed by `(session, TimerToken)`, session
//!   table fed by the `blast-udp` pre-allocation handshake, buffer
//!   pool, and a `blast_core::Demux` routing datagrams to per-session
//!   sans-I/O engines (any of the four retransmission strategies, in
//!   either direction); the [`NodeHandle`] merges per-shard metrics on
//!   read;
//! * [`store`] — the named-blob catalogue the node serves, behind the
//!   object-safe [`Store`] trait (the `blast-vkernel` file-server
//!   semantics at the page level), with the sharded in-memory
//!   [`MemStore`] as default;
//! * [`client`] — the [`Client`] handle: `push` / `pull` / `stats`
//!   against a node, plus third-party `copy_to` / `copy_from` /
//!   `fan_out` orchestration of node-to-node transfers;
//! * [`metrics`] — per-session reports, aggregate `blast-stats`
//!   accumulators, and the per-shard [`ShardReport`] breakdown.
//!
//! ## Example (a sharded node + one client)
//!
//! ```
//! use std::time::Duration;
//! use blast_node::server::NodeBuilder;
//! use blast_node::client::Client;
//!
//! let node = NodeBuilder::new()
//!     .timeout(Duration::from_millis(20))
//!     .shards(2) // falls back to 1 where SO_REUSEPORT is unavailable
//!     .start()
//!     .unwrap();
//!
//! let data: Vec<u8> = (0..50_000u32).map(|i| i as u8).collect();
//! let mut client = Client::connect(node.addr())
//!     .unwrap()
//!     .timeout(Duration::from_millis(20));
//! client.push("blob", &data).unwrap();
//! let pulled = client.pull("blob").unwrap();
//! assert_eq!(pulled.data, data);
//!
//! let metrics = node.shutdown().unwrap();
//! assert_eq!(metrics.sessions_completed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod server;
pub mod store;

pub use client::{Client, CopyReport};
pub use metrics::{NodeMetrics, SessionReport, ShardReport};
pub use server::{NodeBuilder, NodeConfig, NodeHandle, NodeServer};
pub use store::{shared_store, BlobStore, MemStore, SharedStore, Store};
