//! The acceptance test for the node: many concurrent transfers, mixed
//! push/pull, mixed retransmission strategies, fault injection — one
//! node, one socket, every payload verified byte for byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_node::server::NodeBuilder;
use blast_node::{shared_store, Client};
use blast_udp::channel::UdpChannel;
use blast_udp::fault::{FaultConfig, FaultyChannel};

fn client_cfg(strategy: RetxStrategy) -> ProtocolConfig {
    let mut c = ProtocolConfig::default();
    c.timeout = Duration::from_millis(12).into();
    c.max_retries = 100_000;
    c.strategy = strategy;
    c
}

fn node_builder() -> NodeBuilder {
    NodeBuilder::new()
        .timeout(Duration::from_millis(12))
        .max_retries(100_000)
}

fn payload(seed: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| ((i.wrapping_mul(31) ^ seed.wrapping_mul(97)) % 256) as u8)
        .collect()
}

/// ≥ 8 concurrent transfers through one node: pushes and pulls, all
/// four strategies, half the clients behind lossy/chaotic channels.
#[test]
fn twelve_concurrent_mixed_transfers_with_faults() {
    let store = shared_store();
    // Four seeded blobs for the pull sessions, one per strategy.
    let pull_blobs: Vec<(String, Vec<u8>)> = (0..4)
        .map(|i| (format!("seed-{i}"), payload(1000 + i, 30_000 + 7000 * i)))
        .collect();
    for (name, data) in &pull_blobs {
        store.put(name, data.clone().into());
    }
    let node = node_builder().store(store).start().unwrap();
    let addr = node.addr();
    let transfer_ids = Arc::new(AtomicU64::new(1));

    let mut handles = Vec::new();
    // 6 pushes (ids issued centrally), strategies cycling through all
    // four, the odd ones behind a fault-injecting channel.
    let mut push_data = Vec::new();
    for i in 0..6usize {
        let strategy = RetxStrategy::ALL[i % 4];
        let data = payload(i, 20_000 + 9000 * i);
        let name = format!("push-{i}");
        push_data.push((name.clone(), data.clone()));
        let ids = Arc::clone(&transfer_ids);
        handles.push(std::thread::spawn(move || {
            let id = ids.fetch_add(1, Ordering::Relaxed) as u32;
            let cfg = client_cfg(strategy);
            let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), addr).unwrap();
            let report = if i % 2 == 1 {
                let faulty = FaultyChannel::new(ch, FaultConfig::chaos(0.04), 40 + i as u64);
                let mut client = Client::over(faulty).config(cfg).transfer_ids_from(id);
                client.push(&name, &data).unwrap()
            } else {
                let mut client = Client::over(ch).config(cfg).transfer_ids_from(id);
                client.push(&name, &data).unwrap()
            };
            assert!(report.stats.data_packets_sent > 0, "{name}");
        }));
    }
    // 6 pulls of the seeded blobs (two blobs pulled twice), again with
    // strategies cycling and faults on the odd clients.
    for i in 0..6usize {
        let strategy = RetxStrategy::ALL[(i + 2) % 4];
        let (name, expected) = pull_blobs[i % 4].clone();
        let ids = Arc::clone(&transfer_ids);
        handles.push(std::thread::spawn(move || {
            let id = ids.fetch_add(1, Ordering::Relaxed) as u32;
            let cfg = client_cfg(strategy);
            let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), addr).unwrap();
            let report = if i % 2 == 1 {
                let faulty = FaultyChannel::new(ch, FaultConfig::loss(0.06), 70 + i as u64);
                let mut client = Client::over(faulty).config(cfg).transfer_ids_from(id);
                client.pull(&name).unwrap()
            } else {
                let mut client = Client::over(ch).config(cfg).transfer_ids_from(id);
                client.pull(&name).unwrap()
            };
            assert_eq!(report.data, expected, "pull {name} must be byte-exact");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Every push must now be pullable, byte for byte.
    let mut verifier = Client::connect(addr)
        .unwrap()
        .config(client_cfg(RetxStrategy::Selective));
    for (name, expected) in &push_data {
        let report = verifier.pull(name).unwrap();
        assert_eq!(&report.data, expected, "pushed blob {name} must round-trip");
    }

    // A pull client finishes one packet before the node hears its
    // final ack; drain before counting.
    assert!(
        node.wait_idle(Duration::from_secs(10)),
        "sessions drained\n{}\nreports: {:?}",
        node.metrics().summary(),
        node.metrics()
            .reports
            .iter()
            .map(|r| (r.transfer_id, r.name.clone(), r.ok))
            .collect::<Vec<_>>()
    );
    let store = node.store();
    let m = node.shutdown().unwrap();
    assert_eq!(m.sessions_accepted, 18, "12 concurrent + 6 verification");
    assert_eq!(m.sessions_completed, 18);
    assert_eq!(m.sessions_failed, 0);
    assert_eq!(m.pushes, 6);
    assert_eq!(m.pulls, 12);
    assert_eq!(m.sessions_in_flight(), 0);
    assert_eq!(m.session_secs.count(), 18);
    assert!(
        m.session_goodput_mbps.mean() > 0.1,
        "goodput {}",
        m.session_goodput_mbps
    );
    // The store holds the 4 seeds plus the 6 pushes.
    assert_eq!(store.len(), 10);
    // Fault injection really happened: chaotic clients corrupted frames
    // (FCS drops) and/or duplicated data the engines had to absorb.
    let dup_or_drops: u64 = m.fcs_drops
        + m.reports
            .iter()
            .map(|r| r.stats.duplicate_packets_received + r.stats.data_packets_retransmitted)
            .sum::<u64>();
    assert!(
        dup_or_drops > 0,
        "faulty channels must exercise recovery paths"
    );
}

/// The default (adaptive RTO + paced rounds, on both the node and the
/// client) carries concurrent pushes end-to-end over real sockets —
/// the configuration the perf harness measures.
#[test]
fn adaptive_paced_defaults_roundtrip_concurrently() {
    // NodeBuilder::new() is adaptive + paced out of the box.
    let node = NodeBuilder::new().start().unwrap();
    let addr = node.addr();
    let mut handles = Vec::new();
    let mut blobs = Vec::new();
    for i in 0..4usize {
        let data = payload(50 + i, 80_000 + 10_000 * i);
        let name = format!("adaptive-{i}");
        blobs.push((name.clone(), data.clone()));
        handles.push(std::thread::spawn(move || {
            let mut cfg = ProtocolConfig::default();
            cfg.timeout = blast_core::AdaptiveTimeout::lan();
            cfg.pacing = blast_core::PacingConfig::lan();
            cfg.max_retries = 100_000;
            cfg.packet_payload = 1400;
            let mut client = Client::connect(addr).unwrap().config(cfg);
            client.push(&name, &data).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Every paced push must round-trip byte-exactly (pulled back over
    // the node's own paced sender).
    let mut cfg = ProtocolConfig::default();
    cfg.timeout = blast_core::AdaptiveTimeout::lan();
    cfg.pacing = blast_core::PacingConfig::lan();
    cfg.max_retries = 100_000;
    let mut verifier = Client::connect(addr).unwrap().config(cfg);
    for (name, expected) in &blobs {
        let report = verifier.pull(name).unwrap();
        assert_eq!(&report.data, expected, "{name}");
    }
    assert!(node.wait_idle(Duration::from_secs(10)));
    let m = node.shutdown().unwrap();
    assert_eq!(m.sessions_completed, 8);
    assert_eq!(m.sessions_failed, 0);
    assert_eq!(m.retx_rounds.count(), 8, "histogram sees every session");
}

/// Zero-length blobs survive the full push/pull cycle.
#[test]
fn empty_blob_roundtrip() {
    let node = node_builder().start().unwrap();
    let cfg = client_cfg(RetxStrategy::GoBackN);
    let mut client = Client::connect(node.addr()).unwrap().config(cfg);
    client.push("empty", &[]).unwrap();
    let report = client.pull("empty").unwrap();
    assert!(report.data.is_empty());
    node.shutdown().unwrap();
}

/// A multiblast pull: the client asks for chunked transfer and the
/// node serves it with a `MultiBlastSender`.
#[test]
fn multiblast_pull() {
    let store = shared_store();
    let data = payload(7, 300_000);
    store.put("big", data.clone().into());
    let node = node_builder().store(store).start().unwrap();
    let mut cfg = client_cfg(RetxStrategy::GoBackN);
    cfg.multiblast_chunk = 16;
    let ch = UdpChannel::connect("127.0.0.1:0".parse().unwrap(), node.addr()).unwrap();
    // Build a pull request that asks for chunking.
    let report = {
        use blast_udp::fcs::FcsChannel;
        use blast_udp::handshake::{self, Request};
        let mut channel = FcsChannel::new(ch);
        let mut request = Request::pull("big", &cfg);
        request.multiblast_chunk = 16;
        let reply = handshake::initiate(
            &mut channel,
            9,
            &request,
            Duration::from_millis(12),
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(reply.echoed.len, data.len());
        let mut engine = blast_core::blast::BlastReceiver::new(9, reply.echoed.len, &cfg);
        let mut driver = blast_udp::Driver::new(channel).with_linger();
        let out = driver.run(&mut engine).unwrap();
        assert!(out.completion.is_success(), "{:?}", out.completion);
        engine.into_data()
    };
    assert_eq!(report, data);
    assert!(node.wait_idle(Duration::from_secs(5)), "tail ack drained");
    let m = node.metrics();
    // ~294 packets in chunks of 16 → a chunk ack per chunk arrived at
    // the node as acks_received on the sender engine.
    let pull = m.reports.iter().find(|r| r.name == "big").unwrap();
    assert!(pull.stats.acks_received >= 18, "{:?}", pull.stats);
    node.shutdown().unwrap();
}
