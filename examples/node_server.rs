//! Run a blast transfer node.
//!
//! ```bash
//! cargo run --release --example node_server -- 127.0.0.1:47611 --sessions 2 --shards 4 --seed demo
//! ```
//!
//! Binds the given address (default `127.0.0.1:47611`) as a reactor
//! group of `--shards` threads (default 1; needs `SO_REUSEPORT`, falls
//! back to one shard elsewhere), optionally seeds the store with a demo
//! blob, serves the given number of sessions (default: forever), then
//! prints the aggregate metrics and the per-shard breakdown.  Pair it
//! with the `node_client` example.

use std::time::Duration;

use blast_node::server::NodeBuilder;
use blast_node::shared_store;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:47611".to_string();
    let mut sessions: Option<u64> = None;
    let mut seed: Option<String> = None;
    let mut shards = 1usize;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sessions" => sessions = it.next().and_then(|v| v.parse().ok()),
            "--seed" => seed = it.next(),
            "--shards" => shards = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            other => addr = other.to_string(),
        }
    }

    let store = shared_store();
    if let Some(name) = &seed {
        let blob: Vec<u8> = (0..128 * 1024).map(|i| (i % 251) as u8).collect();
        store.put(name, blob.into());
        println!("seeded blob '{name}' (128 KiB)");
    }

    let node = NodeBuilder::new()
        .bind(addr.parse().expect("bind address like 127.0.0.1:47611"))
        .shards(shards)
        .store(store)
        .start()?;
    println!(
        "blast-node listening on {} ({} shard(s))",
        node.addr(),
        node.shards()
    );

    match sessions {
        Some(n) => {
            println!("serving {n} session(s), then reporting…");
            while !node.wait_sessions(n, Duration::from_secs(3600)) {}
        }
        None => {
            println!("serving forever (Ctrl-C to stop)…");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    }

    let store = node.store();
    let reports = node.shard_reports();
    let metrics = node.shutdown()?;
    println!("\n{}", metrics.summary());
    if reports.len() > 1 {
        for r in &reports {
            println!("{}", r.summary());
        }
    }
    println!(
        "store: {} blob(s), {} bytes total: {:?}",
        store.len(),
        store.total_bytes(),
        store.names()
    );
    Ok(())
}
