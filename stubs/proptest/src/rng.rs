//! The deterministic generator behind every test case.
//!
//! Reuses the in-tree `rand` stub's xoshiro256++ [`SmallRng`] so the
//! workspace has exactly one PRNG implementation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded generator handed to strategies by the runner.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Returns a value uniform in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below: zero bound");
        self.0.next_u64() % bound
    }
}

/// Hashes a test name and case index into a per-case seed (FNV-1a over
/// the name, xored with golden-ratio-spread case bits), so every run
/// of the suite explores the same deterministic sequence.  Final
/// avalanche mixing happens in `SmallRng::seed_from_u64`.
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
