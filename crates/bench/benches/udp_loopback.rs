//! Criterion benches for the real-UDP path: goodput of the blast
//! protocol over loopback, 2026 hardware vs the paper's 10 Mbit
//! Ethernet (where 64 KB took 141 ms ≈ 3.7 Mbit/s of goodput).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

use blast_core::ProtocolConfig;
use blast_udp::channel::UdpChannel;
use blast_udp::peer::{recv_data, send_data};

fn bench_udp(c: &mut Criterion) {
    const BYTES: usize = 256 * 1024;
    let data: Vec<u8> = (0..BYTES).map(|i| i as u8).collect();

    let mut group = c.benchmark_group("udp_loopback");
    group.throughput(Throughput::Bytes(BYTES as u64));
    group.measurement_time(Duration::from_secs(8));

    group.bench_function("blast_256k", |b| {
        // Time the sender's hand-off-to-final-ack only; the receiver's
        // 50 ms post-completion linger (tail-ack insurance) happens
        // outside the measured window.
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let (ca, cb) = UdpChannel::pair().unwrap();
                let mut cfg = ProtocolConfig::default();
                cfg.timeout = Duration::from_millis(50).into();
                // Larger packets than the paper's 1 KB: loopback has no
                // Ethernet MTU, but stay within the validated bound.
                cfg.packet_payload = 1400;
                let cfg2 = cfg.clone();
                let data2 = data.clone();
                let rx = std::thread::spawn(move || recv_data(cb, &cfg2).unwrap());
                let t0 = std::time::Instant::now();
                send_data(ca, 1, &data2, &cfg).unwrap();
                total += t0.elapsed();
                rx.join().unwrap();
            }
            total
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_udp
}
criterion_main!(benches);
