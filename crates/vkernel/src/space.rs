//! Address spaces and pre-registered segments.
//!
//! "By definition of the V interprocess communication primitives, the
//! recipient has sufficient buffers allocated to receive the data prior
//! to the transfer" (§2).  A [`Space`] is a process's address space; a
//! segment is a registered buffer within it that a peer may `MoveTo`
//! into or `MoveFrom` out of.  Registration is what stands in for V's
//! "message indicating the starting address of the buffer and its
//! length".

use std::collections::HashMap;

/// Identifies a registered segment within one address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

/// A process's address space with registered transfer segments.
#[derive(Debug, Default)]
pub struct Space {
    segments: HashMap<SegmentId, Vec<u8>>,
    next_id: u32,
}

impl Space {
    /// Empty address space.
    pub fn new() -> Self {
        Space::default()
    }

    /// Pre-allocate a receive segment of `len` bytes (zero-filled),
    /// returning its id.  This is the buffer allocation that must
    /// happen *before* a transfer.
    pub fn register(&mut self, len: usize) -> SegmentId {
        let id = SegmentId(self.next_id);
        self.next_id += 1;
        self.segments.insert(id, vec![0; len]);
        id
    }

    /// Register a segment holding a copy of `data` (a send buffer).
    pub fn register_with(&mut self, data: &[u8]) -> SegmentId {
        let id = self.register(data.len());
        self.segments
            .get_mut(&id)
            .expect("just registered")
            .copy_from_slice(data);
        id
    }

    /// Borrow a segment.
    pub fn get(&self, id: SegmentId) -> Option<&[u8]> {
        self.segments.get(&id).map(Vec::as_slice)
    }

    /// Borrow a segment mutably.
    pub fn get_mut(&mut self, id: SegmentId) -> Option<&mut [u8]> {
        self.segments.get_mut(&id).map(Vec::as_mut_slice)
    }

    /// Length of a segment.
    pub fn len_of(&self, id: SegmentId) -> Option<usize> {
        self.segments.get(&id).map(Vec::len)
    }

    /// Remove a segment, returning its contents.
    pub fn release(&mut self, id: SegmentId) -> Option<Vec<u8>> {
        self.segments.remove(&id)
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_allocates_zeroed() {
        let mut s = Space::new();
        let id = s.register(16);
        assert_eq!(s.get(id).unwrap(), &[0u8; 16][..]);
        assert_eq!(s.len_of(id), Some(16));
        assert_eq!(s.segment_count(), 1);
    }

    #[test]
    fn register_with_copies_data() {
        let mut s = Space::new();
        let id = s.register_with(b"file contents");
        assert_eq!(s.get(id).unwrap(), b"file contents");
    }

    #[test]
    fn ids_are_distinct_and_stable() {
        let mut s = Space::new();
        let a = s.register(1);
        let b = s.register(2);
        assert_ne!(a, b);
        assert_eq!(s.len_of(a), Some(1));
        assert_eq!(s.len_of(b), Some(2));
    }

    #[test]
    fn mutation_in_place() {
        let mut s = Space::new();
        let id = s.register(4);
        s.get_mut(id).unwrap()[2] = 9;
        assert_eq!(s.get(id).unwrap(), &[0, 0, 9, 0][..]);
    }

    #[test]
    fn release_removes() {
        let mut s = Space::new();
        let id = s.register_with(b"xyz");
        assert_eq!(s.release(id).unwrap(), b"xyz");
        assert!(s.get(id).is_none());
        assert!(s.release(id).is_none());
        assert_eq!(s.segment_count(), 0);
    }

    #[test]
    fn unknown_ids_are_none() {
        let s = Space::new();
        assert!(s.get(SegmentId(99)).is_none());
        assert!(s.len_of(SegmentId(99)).is_none());
    }
}
