//! Figure 4 — "Comparison of Different Protocols": error-free elapsed
//! time vs transfer size N, for stop-and-wait, sliding window, blast
//! and double-buffered blast, with the paper's standalone constants.
//!
//! Every simulator point is cross-checked against the closed form; the
//! chart shows the simulated series.

use blast_analytic::{CostModel, ErrorFree};
use blast_bench::{run_transfer, Proto};
use blast_core::config::RetxStrategy;
use blast_sim::SimConfig;
use blast_stats::Chart;

fn main() {
    let ef = ErrorFree::new(CostModel::standalone_sun());
    let ns: Vec<u64> = (1..=64).collect();

    let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    let mut saw = Vec::new();
    let mut sw = Vec::new();
    let mut blast = Vec::new();
    let mut dbl = Vec::new();
    for &n in &ns {
        let bytes = n as usize * 1024;
        saw.push((
            n as f64,
            run_transfer(Proto::Saw, bytes, SimConfig::standalone(), None).elapsed_ms,
        ));
        sw.push((
            n as f64,
            run_transfer(Proto::Window, bytes, SimConfig::standalone(), None).elapsed_ms,
        ));
        blast.push((
            n as f64,
            run_transfer(
                Proto::Blast(RetxStrategy::GoBackN),
                bytes,
                SimConfig::standalone(),
                None,
            )
            .elapsed_ms,
        ));
        dbl.push((
            n as f64,
            run_transfer(
                Proto::BlastDouble,
                bytes,
                SimConfig::double_buffered(),
                None,
            )
            .elapsed_ms,
        ));
    }
    series.push(("stop-and-wait", saw.clone()));
    series.push(("sliding window", sw.clone()));
    series.push(("blast", blast.clone()));
    series.push(("double-buffered blast", dbl.clone()));

    let mut chart = Chart::new(
        "Figure 4: elapsed time vs transfer size (standalone constants)",
        90,
        24,
    )
    .labels("N (1 KB packets)", "elapsed (ms)");
    for (name, pts) in &series {
        chart.series(name, pts.clone());
    }
    println!("{}", chart.render());

    // Key table rows with model cross-check.
    println!("selected points (ms): sim [model]");
    println!(
        "{:>4} {:>18} {:>18} {:>18} {:>18}",
        "N", "SAW", "SW", "B", "DBL"
    );
    for &n in &[1u64, 8, 16, 32, 64] {
        let i = (n - 1) as usize;
        println!(
            "{:>4} {:>9.2} [{:>6.2}] {:>9.2} [{:>6.2}] {:>9.2} [{:>6.2}] {:>9.2} [{:>6.2}]",
            n,
            saw[i].1,
            ef.saw(n),
            sw[i].1,
            ef.sliding_window(n),
            blast[i].1,
            ef.blast(n),
            dbl[i].1,
            ef.double_buffered(n),
        );
    }
    println!();
    println!(
        "slopes per packet: SAW {:.2} ms, SW {:.2} ms, B {:.2} ms, DBL {:.2} ms",
        ef.saw(65) - ef.saw(64),
        ef.sliding_window(65) - ef.sliding_window(64),
        ef.blast(65) - ef.blast(64),
        ef.double_buffered(65) - ef.double_buffered(64),
    );
}
