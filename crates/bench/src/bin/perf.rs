//! `perf` — the machine-readable performance harness.
//!
//! Unlike the criterion benches (which need minutes of sampling and
//! produce human-oriented reports), this runner executes a fixed,
//! deterministic workload and emits JSON that CI archives on every run,
//! so the repo accumulates a measured performance trajectory instead of
//! one-off numbers:
//!
//! * `BENCH_engines.json` — pure engine cost: full transfers through the
//!   virtual-time harness (no sockets, no simulated hardware), per
//!   protocol variant;
//! * `BENCH_node_loopback.json` — the real thing: aggregate goodput of a
//!   `blast-node` server fan-in over loopback UDP at 1/4/16 concurrent
//!   sessions, for every reactor-shard count on the `--shards` axis
//!   (default `1,4`; sharded records carry an `_sN` name suffix, so the
//!   single-reactor names stay comparable across history).
//!
//! Every record carries goodput, p50/p99 latency, and — via the
//! process-wide counting allocator below — **allocations per packet**,
//! the paper's "per-packet software overhead" made observable.
//!
//! Run `--smoke` for the CI-sized workload (a few seconds); the default
//! workload is larger for quieter numbers on a developer machine.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_core::control::{AdaptiveTimeout, PacingConfig};
use blast_core::harness::{Harness, LossPlan};
use blast_core::multiblast::MultiBlastSender;
use blast_core::saw::{SawReceiver, SawSender};
use blast_core::window::WindowSender;
use blast_core::Engine;
use blast_stats::Histogram;
// Every `alloc`/`realloc` in the process bumps the shared counter; the
// sections below read it before and after a measured loop and divide by
// the packets moved — allocations per packet is the headline number the
// zero-allocation hot path is judged on.
use blast_counting_alloc::{allocations, CountingAlloc};
use blast_node::server::NodeBuilder;
use blast_node::Client;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured configuration, ready for JSON.
struct Record {
    name: String,
    bytes: usize,
    iters: usize,
    goodput_mbps: f64,
    p50_ms: f64,
    p99_ms: f64,
    packets: u64,
    allocs_per_packet: f64,
    /// Retransmission-round percentiles across sessions (node records
    /// only) — the loss-diagnosability histogram from `node::metrics`.
    retx_p50: Option<f64>,
    retx_p99: Option<f64>,
    /// Which `blast_udp::netio` backend the node ran (node records).
    netio_backend: Option<String>,
    /// Mean final AIMD burst across paced sessions (node records).
    burst_final_mean: Option<f64>,
    /// Mean of per-session mean burst sizes (node records).
    burst_mean_mean: Option<f64>,
    /// Node-socket wait strategy: event wakeups vs timer expiries.
    io_wakeups: Option<u64>,
    io_timeouts: Option<u64>,
    /// Reactor shards the node effectively ran (node records; differs
    /// from the requested count where `SO_REUSEPORT` is unavailable).
    shards: Option<usize>,
    /// Sessions accepted per shard across all repeats, `"a/b/…"`
    /// (sharded node records only) — the kernel's 4-tuple spread.
    shard_sessions: Option<String>,
    /// Flight-recorder events captured across all repeats (`_rec`
    /// records — the recorder-on twin of the plain run).
    trace_events: Option<u64>,
    /// Flight-recorder events dropped on ring overflow (`_rec`).
    trace_dropped: Option<u64>,
    /// Segmentation-offload probe outcome the node ran with (node and
    /// copy records) — `gso+gro`, `unsupported`, `offload-disabled`, …
    offload: Option<String>,
    /// GSO super-datagrams submitted / segments carried inside them,
    /// and the GRO twins on the receive side (node and copy records).
    gso_super_datagrams: Option<u64>,
    gso_segments: Option<u64>,
    gro_super_datagrams: Option<u64>,
    gro_segments: Option<u64>,
}

impl Record {
    fn new(name: String, bytes: usize, iters: usize) -> Record {
        Record {
            name,
            bytes,
            iters,
            goodput_mbps: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            packets: 0,
            allocs_per_packet: 0.0,
            retx_p50: None,
            retx_p99: None,
            netio_backend: None,
            burst_final_mean: None,
            burst_mean_mean: None,
            io_wakeups: None,
            io_timeouts: None,
            shards: None,
            shard_sessions: None,
            trace_events: None,
            trace_dropped: None,
            offload: None,
            gso_super_datagrams: None,
            gso_segments: None,
            gro_super_datagrams: None,
            gro_segments: None,
        }
    }

    /// Stamp the segmentation-offload outcome and counters from one
    /// node's final metrics (additive, so a record spanning several
    /// nodes accumulates all of them).
    fn add_offload(&mut self, m: &blast_node::metrics::NodeMetrics) {
        self.offload = Some(m.netio_offload.clone());
        *self.gso_super_datagrams.get_or_insert(0) += m.io.gso_super_datagrams;
        *self.gso_segments.get_or_insert(0) += m.io.gso_segments;
        *self.gro_super_datagrams.get_or_insert(0) += m.io.gro_super_datagrams;
        *self.gro_segments.get_or_insert(0) += m.io.gro_segments;
    }
}

/// One loss-sweep measurement: adaptive-RTO + AIMD-pacing behaviour
/// under iid loss in the virtual-time harness (deterministic,
/// seed-stamped).  The burst fields are the AIMD trajectory: the
/// initial burst, how small the pacer was driven, and where it ended.
struct LossRecord {
    name: String,
    loss_pct: f64,
    trials: usize,
    rounds_mean: f64,
    retx_packets_mean: f64,
    rto_initial_ms: f64,
    rto_final_ms_mean: f64,
    srtt_final_us_mean: f64,
    burst_initial: f64,
    burst_final_mean: f64,
    burst_min_mean: f64,
    /// Virtual-time goodput (congestion-control sweep records only):
    /// transferred bytes over the harness's `sender_elapsed`, so the
    /// figure compares pacing policies, not host scheduling noise.
    goodput_mbps: Option<f64>,
    /// Windowed-max delivery-rate estimate at end of transfer, Mbit/s
    /// (congestion-control records).
    rate_mbps: Option<f64>,
    /// Windowed-min round-trip estimate, µs (congestion-control
    /// records).
    min_rtt_us: Option<f64>,
    /// Packets lost to bottleneck queue overflow — the self-induced
    /// share of the loss (congestion-control records).
    overflow_mean: Option<f64>,
}

/// Deterministic per-stream generator (xorshift64*), one instance per
/// bench session so the 4/16-session runs draw identical streams on
/// every invocation — the variance band then reflects the system, not
/// the workload.
struct SessionRng(u64);

impl SessionRng {
    fn new(stream: u64) -> Self {
        // splitmix-style scramble so streams 0,1,2… decorrelate.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SessionRng((z ^ (z >> 31)).max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn payload(&mut self, bytes: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(bytes);
        while out.len() < bytes {
            let word = self.next_u64().to_le_bytes();
            let take = word.len().min(bytes - out.len());
            out.extend_from_slice(&word[..take]);
        }
        out
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn mbps(bytes: u64, elapsed: Duration) -> f64 {
    (bytes as f64 / 1e6) / elapsed.as_secs_f64().max(1e-12)
}

fn payload(bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
        .collect()
}

/// Engine-only measurement: run `iters` full transfers through the
/// virtual-time harness.  `run_one` executes a single transfer and
/// returns the datagrams the pair produced; the first (unmeasured) call
/// warms one-time setup — buffer pools, scratch capacity — out of the
/// steady-state numbers.
fn engine_record(
    name: &str,
    bytes: usize,
    iters: usize,
    mut run_one: impl FnMut() -> u64,
) -> Record {
    let mut latencies = Vec::with_capacity(iters);
    let mut packets = 0u64;
    run_one();
    let allocs_before = allocations();
    let t0 = Instant::now();
    for _ in 0..iters {
        let it = Instant::now();
        packets += run_one();
        latencies.push(it.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = t0.elapsed();
    let allocs = allocations() - allocs_before;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mut r = Record::new(name.to_string(), bytes, iters);
    r.goodput_mbps = mbps((bytes * iters) as u64, elapsed);
    r.p50_ms = percentile(&latencies, 0.50);
    r.p99_ms = percentile(&latencies, 0.99);
    r.packets = packets;
    r.allocs_per_packet = allocs as f64 / packets.max(1) as f64;
    r
}

/// Node measurement: N concurrent client threads each push `bytes`
/// through one node on loopback; the aggregate goodput across the
/// fan-in is the figure a transfer node is judged on.
///
/// Transmission control is the adaptive stack (Jacobson/Karn RTO +
/// paced rounds + grown SO_RCVBUF) on both sides.  Each session draws
/// its payload and start stagger from a deterministic per-session RNG
/// stream, so every invocation runs the identical workload and the
/// 4/16-session variance band reflects the system under test.
///
/// `shards` asks the node for that many reactor threads (an
/// `SO_REUSEPORT` socket group); the record carries the *effective*
/// count, since non-Linux hosts fall back to a single reactor.
///
/// `recorder` attaches the flight recorder (per-shard event rings) and
/// suffixes the record name `_rec`: the same workload measured with
/// tracing on, so the recorder's overhead is a committed delta rather
/// than a claim.
///
/// `gso` flips the process-wide segmentation-offload switch for the
/// run and suffixes the record name `_gso`: plain records pin offload
/// off, so the `_gso` twin isolates what `UDP_SEGMENT`/`UDP_GRO` buy
/// (the record's `offload` field carries the probe outcome, so a host
/// without kernel support commits an explicit `unsupported` record
/// instead of a silent identical rerun).
fn node_record(
    sessions: usize,
    bytes: usize,
    repeats: usize,
    shards: usize,
    recorder: bool,
    gso: bool,
) -> Record {
    blast_udp::netio::set_offload_enabled(gso);
    let mut latencies: Vec<f64> = Vec::new();
    let mut goodputs: Vec<f64> = Vec::new();
    let mut packets = 0u64;
    let mut allocs = 0u64;
    let mut retx = Histogram::linear(0.0, 64.0, 64);
    let mut burst_finals: Vec<f64> = Vec::new();
    let mut burst_means: Vec<f64> = Vec::new();
    let mut io_wakeups = 0u64;
    let mut io_timeouts = 0u64;
    let mut backend = String::new();
    let mut offload_metrics = blast_node::metrics::NodeMetrics::default();
    let mut effective_shards = 1usize;
    let mut shard_accepted: Vec<u64> = Vec::new();
    let mut trace_events = 0u64;
    let mut trace_dropped = 0u64;
    // Per-shard ring sized for a full repeat of the 16-session run, so
    // the drop counter reads the recorder's honesty, not its budget.
    const TRACE_RING: usize = 1 << 16;
    for repeat in 0..repeats {
        // Builder defaults are already adaptive + paced; just raise the
        // retry ceiling for the loss-heavy 16-session runs.
        let mut builder = NodeBuilder::new().max_retries(100_000).shards(shards);
        if recorder {
            builder = builder.telemetry(TRACE_RING);
        }
        let node = builder.start().expect("start node");
        let addr = node.addr();
        // Per-session deterministic streams, drawn before the measured
        // window so payload generation never pollutes the alloc count.
        let inputs: Vec<(u32, Vec<u8>, Duration)> = (0..sessions)
            .map(|s| {
                let id = (repeat * sessions + s + 1) as u32;
                let mut rng = SessionRng::new(u64::from(id));
                let payload = rng.payload(bytes);
                // Spread session starts over ≤ 2 ms so the handshake
                // burst does not synchronize round-0 collisions.
                let stagger = Duration::from_micros(rng.next_u64() % 2000);
                (id, payload, stagger)
            })
            .collect();
        // One client config cloned per session: every client engine
        // shares (and keeps warm) one buffer pool, the same
        // steady-state policy the engine records and the node itself
        // use.  Warmed to the AIMD burst ceiling before the measured
        // window so pool fills do not masquerade as per-packet cost.
        let mut client_cfg = ProtocolConfig::default();
        client_cfg.timeout = AdaptiveTimeout::lan();
        client_cfg.pacing = PacingConfig::lan();
        client_cfg.max_retries = 100_000;
        client_cfg.packet_payload = 1400;
        client_cfg.pool.warm(bytes / 1400 + 8);
        let allocs_before = allocations();
        let t0 = Instant::now();
        let handles: Vec<_> = inputs
            .into_iter()
            .map(|(id, data, stagger)| {
                let cfg = client_cfg.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(stagger);
                    let mut client = Client::connect(addr)
                        .expect("connect")
                        .config(cfg)
                        .transfer_ids_from(id);
                    let report = client.push(&format!("s{id}"), &data).expect("push");
                    (report.elapsed.as_secs_f64() * 1e3, report.pacing)
                })
            })
            .collect();
        for h in handles {
            let (latency, pacing) = h.join().expect("client thread");
            latencies.push(latency);
            // The push sender is the client: its engine carries the
            // AIMD burst trajectory for this session.
            if let Some(p) = pacing {
                burst_finals.push(f64::from(p.burst));
                burst_means.push(p.mean_burst);
            }
        }
        let elapsed = t0.elapsed();
        allocs += allocations() - allocs_before;
        goodputs.push(mbps((bytes * sessions) as u64, elapsed));
        node.wait_idle(Duration::from_secs(10));
        effective_shards = node.shards();
        let reports = node.shard_reports();
        if shard_accepted.len() < reports.len() {
            shard_accepted.resize(reports.len(), 0);
        }
        for (i, rep) in reports.iter().enumerate() {
            shard_accepted[i] += rep.sessions_accepted;
        }
        if recorder {
            // Drain outside the measured window: the rings are sized
            // for the whole repeat, so the reactors never waited on us.
            trace_events += node.drain_trace().len() as u64;
            trace_dropped += node.telemetry_dropped();
        }
        let m = node.shutdown().expect("node shutdown");
        packets += m.datagrams_received + m.datagrams_sent;
        retx.merge(&m.retx_rounds);
        if m.burst_final.count() > 0 {
            burst_finals.push(m.burst_final.mean());
            burst_means.push(m.burst_mean.mean());
        }
        io_wakeups += m.io.wakeups;
        io_timeouts += m.io.timeouts;
        backend = m.netio_backend.clone();
        offload_metrics.merge_from(&m);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let avg = |v: &[f64]| (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64);
    // Single-reactor runs keep the historical names so the committed
    // trajectory stays comparable; sharded runs get an `_sN` suffix.
    let mut name = format!("push_{sessions}x{}k", bytes / 1024);
    if shards > 1 {
        let _ = write!(name, "_s{shards}");
    }
    if gso {
        name.push_str("_gso");
    }
    if recorder {
        name.push_str("_rec");
    }
    let mut r = Record::new(name, bytes * sessions, repeats);
    r.goodput_mbps = goodputs.iter().sum::<f64>() / goodputs.len().max(1) as f64;
    r.p50_ms = percentile(&latencies, 0.50);
    r.p99_ms = percentile(&latencies, 0.99);
    r.packets = packets;
    r.allocs_per_packet = allocs as f64 / packets.max(1) as f64;
    r.retx_p50 = Some(retx.percentile(50.0));
    r.retx_p99 = Some(retx.percentile(99.0));
    r.netio_backend = Some(backend);
    r.burst_final_mean = avg(&burst_finals);
    r.burst_mean_mean = avg(&burst_means);
    r.io_wakeups = Some(io_wakeups);
    r.io_timeouts = Some(io_timeouts);
    r.shards = Some(effective_shards);
    r.shard_sessions = (effective_shards > 1).then(|| {
        shard_accepted
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("/")
    });
    if recorder {
        r.trace_events = Some(trace_events);
        r.trace_dropped = Some(trace_dropped);
    }
    r.add_offload(&offload_metrics);
    r
}

/// Third-party copy measurement: one source node seeded with a blob,
/// one destination node, and a client orchestrating the move `repeats`
/// times.  `relayed` measures the legacy path — the client pulls the
/// blob from the source and pushes it to the destination, every byte
/// crossing the client twice — while the direct path issues a single
/// `Copy` verb and the source blasts straight at the destination
/// (including the end-to-end digest check).  Direct beating relayed is
/// the claim the copy records exist to keep honest.
fn copy_record(bytes: usize, repeats: usize, relayed: bool) -> Record {
    let data = SessionRng::new(0xC0FFEE).payload(bytes);
    let store = blast_node::shared_store();
    store.put("blob", data.clone().into());
    let src = NodeBuilder::new()
        .max_retries(100_000)
        .store(store)
        .start()
        .expect("source node");
    let dst = NodeBuilder::new()
        .max_retries(100_000)
        .start()
        .expect("destination node");
    // Persistent clients, connected outside the measured window: the
    // direct path drives the source, the relayed path additionally
    // pushes through a client connected to the destination.
    let mut source_client = Client::connect(src.addr()).expect("connect source");
    let mut dest_client = Client::connect(dst.addr()).expect("connect destination");
    let mut latencies: Vec<f64> = Vec::new();
    let mut goodputs: Vec<f64> = Vec::new();
    let allocs_before = allocations();
    for _ in 0..repeats {
        let t0 = Instant::now();
        if relayed {
            let pulled = source_client.pull("blob").expect("relay pull");
            dest_client.push("blob", &pulled.data).expect("relay push");
        } else {
            let report = source_client
                .copy_to("blob", dst.addr())
                .expect("third-party copy");
            assert!(report.verified, "replica digest mismatch");
        }
        let elapsed = t0.elapsed();
        latencies.push(elapsed.as_secs_f64() * 1e3);
        goodputs.push(mbps(bytes as u64, elapsed));
    }
    let allocs = allocations() - allocs_before;
    src.wait_idle(Duration::from_secs(10));
    dst.wait_idle(Duration::from_secs(10));
    let ms = src.shutdown().expect("source shutdown");
    let md = dst.shutdown().expect("destination shutdown");
    let packets =
        ms.datagrams_received + ms.datagrams_sent + md.datagrams_received + md.datagrams_sent;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let name = format!(
        "copy_{}_{}k",
        if relayed { "relayed" } else { "direct" },
        bytes / 1024
    );
    let mut r = Record::new(name, bytes, repeats);
    r.goodput_mbps = goodputs.iter().sum::<f64>() / goodputs.len().max(1) as f64;
    r.p50_ms = percentile(&latencies, 0.50);
    r.p99_ms = percentile(&latencies, 0.99);
    r.packets = packets;
    r.allocs_per_packet = allocs as f64 / packets.max(1) as f64;
    // Both nodes' offload counters, so the record shows the blast legs
    // (source→destination and node→client) coalescing.
    r.add_offload(&ms);
    r.add_offload(&md);
    r
}

/// Export a sample Perfetto trace: a 4-shard node with the flight
/// recorder on, serving concurrent pulls (node-side senders, so the
/// blast rounds and AIMD transitions happen where the recorder is) and
/// one remote `Stats` query, drained and rendered as Chrome trace-event
/// JSON at `path`.
fn write_sample_trace(path: &str) {
    let store = blast_node::shared_store();
    let blob = payload(256 * 1024);
    for i in 0..4 {
        store.put(&format!("trace-{i}"), blob.clone().into());
    }
    let node = NodeBuilder::new()
        .max_retries(100_000)
        .shards(4)
        .telemetry(1 << 16)
        .store(store)
        .start()
        .expect("start trace node");
    let addr = node.addr();
    let handles: Vec<_> = (0..8usize)
        .map(|i| {
            std::thread::spawn(move || {
                let mut cfg = ProtocolConfig::default();
                cfg.timeout = AdaptiveTimeout::lan();
                cfg.max_retries = 100_000;
                let mut client = Client::connect(addr).expect("connect").config(cfg);
                client
                    .pull(&format!("trace-{}", i % 4))
                    .expect("trace pull");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("trace client");
    }
    let mut stats_client = Client::connect(addr)
        .expect("stats connect")
        .patience(Duration::from_secs(5));
    stats_client.stats().expect("stats query");
    node.wait_idle(Duration::from_secs(10));
    let events = node.drain_trace();
    let dropped = node.telemetry_dropped();
    node.shutdown().expect("trace node shutdown");
    std::fs::write(path, blast_telemetry::chrome_trace(&events)).expect("write trace");
    println!(
        "wrote {path}: {} events ({dropped} dropped) — load it at https://ui.perfetto.dev",
        events.len()
    );
}

/// Loss-sweep scenarios: a 64 KB adaptive + paced blast through the
/// virtual-time harness under iid loss, recording the retransmission
/// behaviour (rounds, retransmitted packets) and the RTO trajectory
/// (seed → post-run value, plus the converged SRTT) per loss rate.
fn loss_sweep(trials: usize) -> Vec<LossRecord> {
    let initial = Duration::from_millis(5);
    // AIMD pacing with room in both directions: initial 16, floor 2,
    // ceiling 64 — the sweep records how far loss drives the burst
    // down (and clean runs drive it up).
    let pacing = PacingConfig::aimd(16, Duration::from_micros(50), 2, 64, 8);
    let mut out = Vec::new();
    for loss_pct in [0u32, 1, 2, 5, 10] {
        let cfg = ProtocolConfig::default()
            .with_timeout(AdaptiveTimeout::Adaptive {
                initial,
                min: Duration::from_millis(1),
                max: Duration::from_millis(500),
            })
            .with_pacing(pacing);
        let mut cfg = cfg;
        cfg.max_retries = 100_000;
        let data: Arc<[u8]> = payload(64 * 1024).into();
        let mut rounds = 0u64;
        let mut retx_packets = 0u64;
        let mut rto_final_ms = 0.0;
        let mut srtt_final_us = 0.0;
        let mut burst_final = 0.0;
        let mut burst_min = 0.0;
        for trial in 0..trials {
            let seed = 0xB1A5_7000 + u64::from(loss_pct) * 1000 + trial as u64;
            let plan = if loss_pct == 0 {
                LossPlan::perfect()
            } else {
                LossPlan::random(seed, loss_pct, 100)
            };
            let mut h = Harness::new(
                BlastSender::new(1, data.clone(), &cfg),
                BlastReceiver::new(1, data.len(), &cfg),
                plan,
            );
            let outcome = h.run().expect("loss-sweep transfer completes");
            rounds += outcome.sender.retransmission_rounds;
            retx_packets += outcome.sender.data_packets_retransmitted;
            rto_final_ms += h.sender().current_rto().as_secs_f64() * 1e3;
            srtt_final_us += h
                .sender()
                .srtt()
                .map(|d| d.as_secs_f64() * 1e6)
                .unwrap_or(0.0);
            let snap = h
                .sender()
                .pacing_snapshot()
                .expect("sweep engines are paced");
            burst_final += f64::from(snap.burst);
            burst_min += f64::from(snap.min_burst_seen);
        }
        let n = trials.max(1) as f64;
        out.push(LossRecord {
            name: format!("blast_64k_loss_{loss_pct}pct"),
            loss_pct: f64::from(loss_pct),
            trials,
            rounds_mean: rounds as f64 / n,
            retx_packets_mean: retx_packets as f64 / n,
            rto_initial_ms: initial.as_secs_f64() * 1e3,
            rto_final_ms_mean: rto_final_ms / n,
            srtt_final_us_mean: srtt_final_us / n,
            burst_initial: f64::from(pacing.burst),
            burst_final_mean: burst_final / n,
            burst_min_mean: burst_min / n,
            goodput_mbps: None,
            rate_mbps: None,
            min_rtt_us: None,
            overflow_mean: None,
        });
    }
    out
}

/// Congestion-control sweep (`_aimd`/`_rate` record pairs): the same
/// 256 KB multiblast workload through the virtual-time harness, over a
/// receiving-interface bottleneck (50 kpkt/s service, 8-deep queue —
/// the paper's "interface errors" made mechanical), driven once by the
/// AIMD pacer alone and once by delivery-rate (BBR-flavoured) pacing.
///
/// The loss axis covers iid rates plus one Gilbert–Elliott burst
/// profile (`_ge` names; its `loss_pct` is the chain's mean loss).
/// Against that axis the pair answers the tentpole question: does
/// pacing to the measured bandwidth-delay product retransmit less and
/// self-induce less overflow than probing for loss — and what does it
/// cost when the path is clean?  Goodput is virtual-time, so the
/// records are exactly reproducible (seed-stamped per trial).
fn cc_sweep(trials: usize) -> Vec<LossRecord> {
    const CC_BYTES: usize = 256 * 1024;
    let initial = Duration::from_millis(1);
    let service = Duration::from_micros(20);
    let queue_cap = 8;
    let gap = Duration::from_micros(50);
    let modes = [
        ("aimd", PacingConfig::aimd(16, gap, 2, 64, 8)),
        ("rate", PacingConfig::rate_based(16, gap, 2, 64, 8)),
    ];
    // (suffix, nominal loss %, plan for a given seed)
    type PlanFor = fn(u64) -> LossPlan;
    let profiles: [(&str, f64, PlanFor); 6] = [
        ("loss_0pct", 0.0, |_| LossPlan::perfect()),
        ("loss_1pct", 1.0, |s| LossPlan::random(s, 1, 100)),
        ("loss_2pct", 2.0, |s| LossPlan::random(s, 2, 100)),
        ("loss_5pct", 5.0, |s| LossPlan::random(s, 5, 100)),
        ("loss_10pct", 10.0, |s| LossPlan::random(s, 10, 100)),
        // Bursty channel: enter the bad state with p=2%, leave with
        // p=25% (mean burst ≈ 4 packets), lose half the packets while
        // bad — ≈ 3.7% mean loss arriving in clumps.
        ("ge", 3.7, |s| {
            LossPlan::gilbert_elliott(s, 20_000, 250_000, 0, 500_000)
        }),
    ];
    let data: Arc<[u8]> = payload(CC_BYTES).into();
    let mut out = Vec::new();
    for (suffix, loss_pct, plan_for) in profiles {
        for (mode, pacing) in modes {
            let mut cfg = ProtocolConfig::default()
                .with_timeout(AdaptiveTimeout::Adaptive {
                    initial,
                    min: Duration::from_micros(100),
                    max: Duration::from_millis(50),
                })
                .with_pacing(pacing)
                .with_multiblast_chunk(32);
            cfg.max_retries = 100_000;
            let mut goodput = 0.0;
            let mut rounds = 0u64;
            let mut retx_packets = 0u64;
            let mut overflow = 0u64;
            let mut rto_final_ms = 0.0;
            let mut srtt_final_us = 0.0;
            let mut burst_final = 0.0;
            let mut burst_min = 0.0;
            let mut rate_mbps = 0.0;
            let mut min_rtt_us = 0.0;
            for trial in 0..trials {
                let seed = 0xCC_5EED + trial as u64 * 7919;
                let mut h = Harness::new(
                    MultiBlastSender::new(1, data.clone(), &cfg),
                    BlastReceiver::new(1, data.len(), &cfg),
                    plan_for(seed),
                )
                .with_bottleneck(service, queue_cap);
                let outcome = h.run().expect("cc-sweep transfer completes");
                let elapsed = h.sender_elapsed().expect("sender finished");
                goodput += mbps(CC_BYTES as u64, elapsed);
                rounds += outcome.sender.retransmission_rounds;
                retx_packets += outcome.sender.data_packets_retransmitted;
                overflow += h.overflow;
                rto_final_ms += h.sender().current_rto().as_secs_f64() * 1e3;
                srtt_final_us += h
                    .sender()
                    .srtt()
                    .map(|d| d.as_secs_f64() * 1e6)
                    .unwrap_or(0.0);
                let snap = h
                    .sender()
                    .pacing_snapshot()
                    .expect("cc-sweep engines are paced");
                burst_final += f64::from(snap.burst);
                burst_min += f64::from(snap.min_burst_seen);
                rate_mbps += snap.rate_bps * 8.0 / 1e6;
                min_rtt_us += snap.min_rtt_us;
            }
            let n = trials.max(1) as f64;
            out.push(LossRecord {
                name: format!("mblast_256k_{suffix}_{mode}"),
                loss_pct,
                trials,
                rounds_mean: rounds as f64 / n,
                retx_packets_mean: retx_packets as f64 / n,
                rto_initial_ms: initial.as_secs_f64() * 1e3,
                rto_final_ms_mean: rto_final_ms / n,
                srtt_final_us_mean: srtt_final_us / n,
                burst_initial: f64::from(pacing.burst),
                burst_final_mean: burst_final / n,
                burst_min_mean: burst_min / n,
                goodput_mbps: Some(goodput / n),
                rate_mbps: Some(rate_mbps / n),
                min_rtt_us: Some(min_rtt_us / n),
                overflow_mean: Some(overflow as f64 / n),
            });
        }
    }
    out
}

fn write_json(path: &str, section: &str, mode: &str, records: &[Record], sweep: &[LossRecord]) {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"blast-bench/{section}/v8\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let mut extra = String::new();
        if let (Some(p50), Some(p99)) = (r.retx_p50, r.retx_p99) {
            let _ = write!(
                extra,
                ", \"retx_rounds_p50\": {p50:.2}, \"retx_rounds_p99\": {p99:.2}"
            );
        }
        if let Some(backend) = &r.netio_backend {
            let _ = write!(extra, ", \"netio_backend\": \"{backend}\"");
        }
        if let (Some(bf), Some(bm)) = (r.burst_final_mean, r.burst_mean_mean) {
            let _ = write!(
                extra,
                ", \"burst_final_mean\": {bf:.1}, \"burst_mean_mean\": {bm:.1}"
            );
        }
        if let (Some(w), Some(t)) = (r.io_wakeups, r.io_timeouts) {
            let _ = write!(extra, ", \"io_wakeups\": {w}, \"io_timeouts\": {t}");
        }
        if let Some(sh) = r.shards {
            let _ = write!(extra, ", \"shards\": {sh}");
        }
        if let Some(split) = &r.shard_sessions {
            let _ = write!(extra, ", \"shard_sessions\": \"{split}\"");
        }
        if let (Some(ev), Some(dr)) = (r.trace_events, r.trace_dropped) {
            let _ = write!(extra, ", \"trace_events\": {ev}, \"trace_dropped\": {dr}");
        }
        if let Some(offload) = &r.offload {
            let _ = write!(extra, ", \"offload\": \"{offload}\"");
        }
        if let (Some(gs), Some(gseg), Some(rs), Some(rseg)) = (
            r.gso_super_datagrams,
            r.gso_segments,
            r.gro_super_datagrams,
            r.gro_segments,
        ) {
            let _ = write!(
                extra,
                ", \"gso_super_datagrams\": {gs}, \"gso_segments\": {gseg}, \
                 \"gro_super_datagrams\": {rs}, \"gro_segments\": {rseg}"
            );
        }
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"bytes\": {}, \"iters\": {}, \"goodput_mbps\": {:.3}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"packets\": {}, \
             \"allocs_per_packet\": {:.4}{extra}}}{comma}",
            r.name,
            r.bytes,
            r.iters,
            r.goodput_mbps,
            r.p50_ms,
            r.p99_ms,
            r.packets,
            r.allocs_per_packet
        );
    }
    out.push_str("  ]");
    if !sweep.is_empty() {
        out.push_str(",\n  \"loss_sweep\": [\n");
        for (i, r) in sweep.iter().enumerate() {
            let comma = if i + 1 == sweep.len() { "" } else { "," };
            let mut extra = String::new();
            if let Some(g) = r.goodput_mbps {
                let _ = write!(extra, ", \"goodput_mbps\": {g:.3}");
            }
            if let Some(rate) = r.rate_mbps {
                let _ = write!(extra, ", \"rate_mbps\": {rate:.2}");
            }
            if let Some(us) = r.min_rtt_us {
                let _ = write!(extra, ", \"min_rtt_us\": {us:.1}");
            }
            if let Some(o) = r.overflow_mean {
                let _ = write!(extra, ", \"overflow_mean\": {o:.2}");
            }
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"loss_pct\": {:.1}, \"trials\": {}, \
                 \"retx_rounds_mean\": {:.3}, \"retx_packets_mean\": {:.3}, \
                 \"rto_initial_ms\": {:.3}, \"rto_final_ms_mean\": {:.3}, \
                 \"srtt_final_us_mean\": {:.1}, \"burst_initial\": {:.0}, \
                 \"burst_final_mean\": {:.2}, \"burst_min_mean\": {:.2}{extra}}}{comma}",
                r.name,
                r.loss_pct,
                r.trials,
                r.rounds_mean,
                r.retx_packets_mean,
                r.rto_initial_ms,
                r.rto_final_ms_mean,
                r.srtt_final_us_mean,
                r.burst_initial,
                r.burst_final_mean,
                r.burst_min_mean
            );
        }
        out.push_str("  ]");
    }
    out.push_str("\n}\n");
    std::fs::write(path, out).expect("write bench json");
}

fn print_summary(title: &str, records: &[Record]) {
    println!("\n== {title} ==");
    println!(
        "{:<24} {:>14} {:>10} {:>10} {:>10} {:>14}",
        "name", "goodput MB/s", "p50 ms", "p99 ms", "packets", "allocs/packet"
    );
    for r in records {
        println!(
            "{:<24} {:>14.2} {:>10.4} {:>10.4} {:>10} {:>14.4}",
            r.name, r.goodput_mbps, r.p50_ms, r.p99_ms, r.packets, r.allocs_per_packet
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // `--shards 1,4` picks the reactor-shard axis for the node records;
    // every count runs the full 1/4/16-session grid.
    let shard_axis: Vec<usize> = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|axis: &Vec<usize>| !axis.is_empty())
        .unwrap_or_else(|| vec![1, 4]);
    // `--trace <path>` additionally exports a sample Perfetto trace
    // from an instrumented 4-shard pull workload.
    let trace_path: Option<String> = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mode = if smoke { "smoke" } else { "full" };
    let (engine_iters, saw_iters, node_repeats) = if smoke { (40, 10, 3) } else { (200, 40, 10) };
    const ENGINE_BYTES: usize = 64 * 1024;
    const NODE_BYTES: usize = 256 * 1024;

    let data: Arc<[u8]> = payload(ENGINE_BYTES).into();
    let mut engines = Vec::new();
    for strategy in RetxStrategy::ALL {
        let data = data.clone();
        // One config per record: every iteration's engines share (and
        // keep warm) the same buffer pool, which is the steady-state
        // regime a long-lived node runs in.
        let cfg = ProtocolConfig::default().with_strategy(strategy);
        engines.push(engine_record(
            &format!("blast/{strategy}"),
            ENGINE_BYTES,
            engine_iters,
            move || {
                let mut h = Harness::new(
                    BlastSender::new(1, data.clone(), &cfg),
                    BlastReceiver::new(1, data.len(), &cfg),
                    LossPlan::perfect(),
                );
                let o = h.run().expect("lossless blast transfer");
                o.sender.data_packets_sent + o.receiver.acks_sent
            },
        ));
    }
    {
        let data = data.clone();
        let cfg = ProtocolConfig::default();
        engines.push(engine_record(
            "sliding-window",
            ENGINE_BYTES,
            engine_iters,
            move || {
                let mut h = Harness::new(
                    WindowSender::new(1, data.clone(), &cfg),
                    SawReceiver::new(1, data.len(), &cfg),
                    LossPlan::perfect(),
                );
                let o = h.run().expect("lossless window transfer");
                o.sender.data_packets_sent + o.receiver.acks_sent
            },
        ));
    }
    {
        let data = data.clone();
        let cfg = ProtocolConfig::default();
        engines.push(engine_record(
            "stop-and-wait",
            ENGINE_BYTES,
            saw_iters,
            move || {
                let mut h = Harness::new(
                    SawSender::new(1, data.clone(), &cfg),
                    SawReceiver::new(1, data.len(), &cfg),
                    LossPlan::perfect(),
                );
                let o = h.run().expect("lossless saw transfer");
                o.sender.data_packets_sent + o.receiver.acks_sent
            },
        ));
    }
    print_summary("engines (virtual-time harness, 64 KB transfers)", &engines);
    let mut sweep = loss_sweep(if smoke { 10 } else { 40 });
    println!("\n== loss sweep (adaptive RTO + AIMD pacing, virtual time) ==");
    println!(
        "{:<24} {:>8} {:>12} {:>12} {:>14} {:>10} {:>18}",
        "name", "loss %", "rounds", "retx pkts", "rto final ms", "srtt µs", "burst fin/min"
    );
    for r in &sweep {
        println!(
            "{:<24} {:>8.1} {:>12.3} {:>12.3} {:>14.3} {:>10.1} {:>12.1}/{:<5.1}",
            r.name,
            r.loss_pct,
            r.rounds_mean,
            r.retx_packets_mean,
            r.rto_final_ms_mean,
            r.srtt_final_us_mean,
            r.burst_final_mean,
            r.burst_min_mean
        );
    }
    let cc = cc_sweep(if smoke { 10 } else { 40 });
    println!("\n== cc sweep (AIMD vs delivery-rate pacing over a 50 kpkt/s bottleneck) ==");
    println!(
        "{:<28} {:>8} {:>12} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "name",
        "loss %",
        "goodput MB/s",
        "rounds",
        "retx pkts",
        "overflow",
        "rate Mb/s",
        "min-RTT µs"
    );
    for r in &cc {
        println!(
            "{:<28} {:>8.1} {:>12.2} {:>10.2} {:>12.2} {:>10.2} {:>10.1} {:>12.1}",
            r.name,
            r.loss_pct,
            r.goodput_mbps.unwrap_or(0.0),
            r.rounds_mean,
            r.retx_packets_mean,
            r.overflow_mean.unwrap_or(0.0),
            r.rate_mbps.unwrap_or(0.0),
            r.min_rtt_us.unwrap_or(0.0)
        );
    }
    sweep.extend(cc);
    write_json("BENCH_engines.json", "engines", mode, &engines, &sweep);

    let mut node = Vec::new();
    // Plain grid: segmentation offload pinned off, so these names keep
    // measuring the batched sendmmsg/recvmmsg path the history was
    // recorded on.
    for &shards in &shard_axis {
        for sessions in [1usize, 4, 16] {
            node.push(node_record(
                sessions,
                NODE_BYTES,
                node_repeats,
                shards,
                false,
                false,
            ));
        }
    }
    // The GSO/GRO twin of the same grid (`_gso` names): identical
    // workload with the segmentation-offload probe live, so
    // `perf_compare` renders what `UDP_SEGMENT`/`UDP_GRO` buy — or an
    // explicit `unsupported` record on hosts without kernel support.
    for &shards in &shard_axis {
        for sessions in [1usize, 4, 16] {
            node.push(node_record(
                sessions,
                NODE_BYTES,
                node_repeats,
                shards,
                false,
                true,
            ));
        }
    }
    // The recorder-on twin (`_rec` names): identical workload with the
    // flight recorder attached (offload off, matching the plain grid),
    // so `perf_compare` renders the tracing overhead as a measured
    // delta.
    for &shards in &shard_axis {
        for sessions in [1usize, 4, 16] {
            node.push(node_record(
                sessions,
                NODE_BYTES,
                node_repeats,
                shards,
                true,
                false,
            ));
        }
    }
    // Third-party copy vs client relay: same blob, same pair of nodes
    // — the committed proof that the Copy verb's node-to-node blast
    // beats hauling the bytes through the client.  Runs with offload in
    // its probed (default) state, the regime a production node is in.
    blast_udp::netio::set_offload_enabled(true);
    node.push(copy_record(NODE_BYTES, node_repeats, false));
    node.push(copy_record(NODE_BYTES, node_repeats, true));
    print_summary("node_loopback (concurrent push fan-in over UDP)", &node);
    for r in &node {
        if let (Some(ev), Some(dr)) = (r.trace_events, r.trace_dropped) {
            println!("{:<24} trace events {ev} ({dr} dropped)", r.name);
        }
        if let Some(sh) = r.shards {
            let split = r.shard_sessions.as_deref().unwrap_or("-");
            println!("{:<24} shards {sh} (sessions/shard: {split})", r.name);
        }
        if let (Some(p50), Some(p99)) = (r.retx_p50, r.retx_p99) {
            println!("{:<24} retx rounds p50 {:.1} / p99 {:.1}", r.name, p50, p99);
        }
        if let (Some(bf), Some(bm)) = (r.burst_final_mean, r.burst_mean_mean) {
            println!("{:<24} AIMD burst final {bf:.1} / mean {bm:.1}", r.name);
        }
        if let (Some(backend), Some(w), Some(t)) =
            (r.netio_backend.as_deref(), r.io_wakeups, r.io_timeouts)
        {
            println!(
                "{:<24} netio [{backend}] waits: {w} wakeups / {t} timeouts",
                r.name
            );
        }
        if let (Some(offload), Some(gs), Some(gseg), Some(rs), Some(rseg)) = (
            r.offload.as_deref(),
            r.gso_super_datagrams,
            r.gso_segments,
            r.gro_super_datagrams,
            r.gro_segments,
        ) {
            println!(
                "{:<24} offload [{offload}]: {gseg} segs out in {gs} supers, \
                 {rseg} segs in from {rs} supers",
                r.name
            );
        }
    }
    write_json(
        "BENCH_node_loopback.json",
        "node_loopback",
        mode,
        &node,
        &[],
    );

    if let Some(path) = trace_path {
        write_sample_trace(&path);
    }

    println!("\nwrote BENCH_engines.json and BENCH_node_loopback.json ({mode} mode)");
}
