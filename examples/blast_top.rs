//! `blast-top` — a live dashboard for a running blast node.
//!
//! Polls the node's remote `Stats` control verb (a single datagram
//! round-trip, no session) and prints the merged metrics snapshot plus
//! the per-shard breakdown, like `top` for blast transfers:
//!
//! ```bash
//! cargo run --release --example node_server -- 47611 4 &
//! cargo run --release --example blast_top -- 127.0.0.1:47611
//! cargo run --release --example blast_top -- 127.0.0.1:47611 --interval 500 --iterations 3
//! ```
//!
//! `--interval <ms>` sets the refresh period (default 1000);
//! `--iterations <n>` exits after n snapshots (default: run until
//! interrupted) — that finite mode is what CI smoke-runs.

use std::time::Duration;

use blast_node::Client;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: blast_top <addr> [--interval <ms>] [--iterations <n>]";
    let mut addr = None;
    let mut interval = Duration::from_millis(1000);
    let mut iterations: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{usage}"));
                interval = Duration::from_millis(ms);
            }
            "--iterations" => {
                iterations = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("{usage}")),
                );
            }
            other => {
                if addr.replace(other.to_string()).is_some() {
                    eprintln!("{usage}");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let addr: std::net::SocketAddr = addr.parse().expect("node address like 127.0.0.1:47611");

    // Patience per poll: generous enough for a loaded node, short
    // enough that a dead address fails fast.
    let patience = interval.max(Duration::from_millis(250)) * 4;
    let mut client = Client::connect(addr)?.patience(patience);
    let mut tick = 0u64;
    loop {
        tick += 1;
        match client.stats() {
            Ok(snapshot) => {
                println!("── blast-top @ {addr} ── snapshot {tick} ──");
                print!("{snapshot}");
                if !snapshot.ends_with('\n') {
                    println!();
                }
            }
            Err(e) => eprintln!("snapshot {tick}: {e}"),
        }
        if iterations.is_some_and(|n| tick >= n) {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}
