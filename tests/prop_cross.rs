//! Workspace-level property tests: invariants that must hold across the
//! whole stack for arbitrary sizes, strategies, loss rates and seeds.

use std::time::Duration;

use blastlan::analytic::{CostModel, ErrorFree};
use blastlan::core::blast::{BlastReceiver, BlastSender};
use blastlan::core::config::{ProtocolConfig, RetxStrategy};
use blastlan::core::multiblast::MultiBlastSender;
use blastlan::sim::{LossModel, SimConfig, Simulator};
use blastlan::vkernel::fileserver::{client_read, FileServer};
use blastlan::vkernel::VCluster;
use proptest::prelude::*;

fn strategy_from(idx: u8) -> RetxStrategy {
    RetxStrategy::ALL[(idx as usize) % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For any configuration: the transfer completes, the elapsed time
    /// is at least the error-free floor, equals it when loss is zero,
    /// and the accounting identities hold.
    #[test]
    fn sim_transfer_invariants(
        kb in 1usize..96,
        strategy_idx in 0u8..4,
        loss_milli in 0u32..80, // p_n in [0, 0.08)
        seed in any::<u64>(),
    ) {
        let p_n = loss_milli as f64 / 1000.0;
        let bytes = kb * 1024;
        let n = kb as u64;
        let ef = ErrorFree::new(CostModel::standalone_sun());
        let floor = ef.blast(n);

        let mut sim = Simulator::new(
            SimConfig::standalone().with_loss(LossModel::iid(p_n), seed),
        );
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        let mut cfg = ProtocolConfig::default().with_strategy(strategy_from(strategy_idx));
        cfg.max_retries = 1_000_000;
        cfg.timeout = Duration::from_millis(250).into();
        let data: std::sync::Arc<[u8]> =
            (0..bytes).map(|i| (i % 255) as u8).collect::<Vec<u8>>().into();
        sim.attach(a, b, Box::new(BlastSender::new(1, data, &cfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, bytes, &cfg)));
        let report = sim.run();

        prop_assert!(report.succeeded(a, 1), "sender completes");
        prop_assert!(report.succeeded(b, 1), "receiver completes");
        let elapsed = report.elapsed_ms(a, 1).unwrap();
        prop_assert!(elapsed >= floor - 1e-9, "elapsed {elapsed} >= floor {floor}");
        if p_n == 0.0 {
            prop_assert!((elapsed - floor).abs() < 1e-9, "error-free is exactly the floor");
        }

        let s = &report.completions[&(a, 1)].info.stats;
        let r = &report.completions[&(b, 1)].info.stats;
        // Fresh transmissions = D.
        prop_assert_eq!(s.data_packets_sent - s.data_packets_retransmitted, n);
        // The receiver placed exactly D distinct packets.
        prop_assert_eq!(r.data_packets_received, n);
        // Conservation: everything the receiver saw was sent.
        prop_assert!(
            r.data_packets_received + r.duplicate_packets_received <= s.data_packets_sent
        );
        // Conservation on the wire: sent = delivered + lost + overrun
        // (+ in-flight at stop, which is zero once both completed and
        //  the final ack got through — allow a small in-flight slack
        //  for retransmissions racing the final ack).
        let sent: u64 = report.host_stats.iter().map(|(_, h)| h.frames_sent).sum();
        let delivered: u64 =
            report.host_stats.iter().map(|(_, h)| h.frames_delivered).sum();
        let overruns = report.total_overruns();
        prop_assert!(delivered + report.wire_losses + overruns <= sent + 2);
    }

    /// Multi-blast must agree with single blast on *what* is delivered
    /// for any chunking, and never be faster than the error-free single
    /// blast floor minus its extra acks.
    #[test]
    fn multiblast_chunking_invariants(
        kb in 2usize..64,
        chunk in 1u32..32,
        seed in any::<u64>(),
    ) {
        let bytes = kb * 1024;
        let mut sim = Simulator::new(
            SimConfig::standalone().with_loss(LossModel::iid(0.01), seed),
        );
        let a = sim.add_host("a");
        let b = sim.add_host("b");
        let mut cfg = ProtocolConfig::default().with_multiblast_chunk(chunk);
        cfg.max_retries = 1_000_000;
        cfg.timeout = Duration::from_millis(250).into();
        let data: std::sync::Arc<[u8]> =
            (0..bytes).map(|i| (i % 251) as u8).collect::<Vec<u8>>().into();
        sim.attach(a, b, Box::new(MultiBlastSender::new(1, data, &cfg)));
        sim.attach(b, a, Box::new(BlastReceiver::new(1, bytes, &cfg)));
        let report = sim.run();
        prop_assert!(report.succeeded(a, 1));
        // One cumulative ack per chunk at minimum.
        let chunks = (kb as u32).div_ceil(chunk) as u64;
        let r = &report.completions[&(b, 1)].info.stats;
        prop_assert!(r.acks_sent >= chunks, "acks {} < chunks {chunks}", r.acks_sent);
    }

    /// The V-kernel file server delivers byte-identical files for any
    /// content and loss.
    #[test]
    fn vkernel_file_reads_always_intact(
        len in 1usize..80_000,
        loss_milli in 0u32..50,
        seed in any::<u64>(),
        content_seed in any::<u64>(),
    ) {
        let mut cluster =
            VCluster::new().with_loss(loss_milli as f64 / 1000.0, seed);
        let k0 = cluster.add_kernel("ws");
        let k1 = cluster.add_kernel("fs");
        let client = cluster.create_process(k0, "client");
        let fs_pid = cluster.create_process(k1, "fileserver");
        let mut fs = FileServer::new(fs_pid);
        let contents: Vec<u8> = (0..len)
            .map(|i| (content_seed.wrapping_mul(i as u64 + 1) >> 13) as u8)
            .collect();
        fs.put("/f", contents.clone());
        let (seg, outcome) = client_read(&mut cluster, &mut fs, client, "/f").unwrap();
        prop_assert_eq!(cluster.segment(client, seg).unwrap(), &contents[..]);
        prop_assert_eq!(outcome.bytes, len);
    }

    /// Analytic sanity: for every (D, p_n, Tr) the expected time under
    /// loss is ≥ the error-free time, monotone in p_n, and the σ of
    /// strategy 2 never exceeds strategy 1's.
    #[test]
    fn analytic_model_invariants(
        d in 1u64..512,
        pn_exp in 1u32..50, // p_n = 10^(-pn_exp/10): 1e-0.1 .. 1e-5
        tr_mult in 1u32..20,
    ) {
        use blastlan::analytic::variance::StdDev;
        let p_n = 10f64.powf(-(pn_exp as f64) / 10.0);
        let x = blastlan::analytic::ExpectedTime::new(CostModel::vkernel_sun());
        let t0 = x.error_free().blast(d);
        let tr = tr_mult as f64 * t0;
        let t = x.blast_full_retx(d, p_n, tr);
        prop_assert!(t >= t0);
        let t_more = x.blast_full_retx(d, (p_n * 1.5).min(0.999), tr);
        prop_assert!(t_more >= t - 1e-9);
        let s = StdDev::new(CostModel::vkernel_sun());
        let s1 = s.full_no_nack(d, p_n, tr);
        let s2 = s.full_nack(d, p_n, tr);
        prop_assert!(s2 <= s1 + 1e-9, "NACK can only reduce sigma: {s2} vs {s1}");
    }
}
