//! The file server — the paper's motivating application (§2).
//!
//! "For instance, when a process wants to read an entire file into its
//! address space, it first allocates a buffer big enough to contain
//! that file.  It then sends a message to the file server indicating
//! the starting address of the buffer and its length.  If necessary,
//! the file server reads the file from disk, and then uses `MoveTo` to
//! move the file from its address space into that of the client."
//!
//! [`FileServer`] implements exactly that protocol over the
//! [`crate::kernel::VCluster`] primitives, so the worked example of the
//! paper runs end-to-end: Send(ReadFile) → Receive → MoveTo → Reply.

use std::collections::BTreeMap;

use crate::kernel::{MoveOutcome, VCluster, VKernelError};
use crate::message::{MessageKind, VMessage};
use crate::process::Pid;
use crate::space::SegmentId;

/// An in-memory file server process.
pub struct FileServer {
    /// The server's process id.
    pub pid: Pid,
    files: BTreeMap<String, Vec<u8>>,
    /// Reads served so far.
    pub reads_served: u64,
}

/// Result of a full client read: the move outcome plus the bytes.
#[derive(Debug)]
pub struct ReadOutcome {
    /// The bulk transfer's outcome.
    pub transfer: MoveOutcome,
    /// Number of file bytes delivered.
    pub bytes: usize,
}

impl FileServer {
    /// Create a file server as process `pid` (already created in the
    /// cluster).
    pub fn new(pid: Pid) -> Self {
        FileServer {
            pid,
            files: BTreeMap::new(),
            reads_served: 0,
        }
    }

    /// Install a file.
    pub fn put(&mut self, name: &str, contents: Vec<u8>) {
        self.files.insert(name.to_string(), contents);
    }

    /// File size, if present.
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.files.get(name).map(Vec::len)
    }

    /// Serve one pending request from the server's mailbox: `Receive`
    /// the message, `MoveTo` the file into the client's pre-registered
    /// segment, then `Reply`.
    ///
    /// The client encodes the destination segment id in the first four
    /// payload bytes after the file name's terminating NUL — standing in
    /// for V's "starting address of the buffer and its length".
    ///
    /// Returns `Ok(None)` when no request is pending.
    pub fn serve_one(
        &mut self,
        cluster: &mut VCluster,
    ) -> Result<Option<MoveOutcome>, VKernelError> {
        let Some(msg) = cluster.receive(self.pid)? else {
            return Ok(None);
        };
        if msg.kind() != MessageKind::ReadFile {
            cluster.reply(
                self.pid,
                msg.sender,
                VMessage::new(MessageKind::Reply, b"EBADREQ"),
            )?;
            return Ok(None);
        }
        let name = msg.payload_str().to_string();
        let client = msg.sender;
        let seg_id = decode_segment_id(&msg);
        let Some(contents) = self.files.get(&name).cloned() else {
            cluster.reply(
                self.pid,
                client,
                VMessage::new(MessageKind::Reply, b"ENOENT"),
            )?;
            return Ok(None);
        };
        // Stage the file in the server's address space (the "read from
        // disk" step) and move it into the client's buffer.
        let src = cluster.register_segment_with(self.pid, &contents)?;
        let outcome = cluster.move_to(self.pid, src, client, seg_id)?;
        cluster.reply(self.pid, client, VMessage::new(MessageKind::Reply, b"OK"))?;
        self.reads_served += 1;
        Ok(Some(outcome))
    }
}

/// Client-side helper: allocate the buffer, send the read request, let
/// the server serve it, and collect the reply — the paper's full read
/// sequence.
pub fn client_read(
    cluster: &mut VCluster,
    server: &mut FileServer,
    client: Pid,
    name: &str,
) -> Result<(SegmentId, ReadOutcome), VKernelError> {
    let size = server
        .size_of(name)
        .ok_or(VKernelError::BadState("file does not exist"))?;
    // 1. "it first allocates a buffer big enough to contain that file"
    let segment = cluster.register_segment(client, size)?;
    // 2. "it then sends a message to the file server"
    let msg = encode_read_request(name, segment);
    cluster.send(client, server.pid, msg)?;
    // 3. the server receives, MoveTo's, and replies
    let outcome = server
        .serve_one(cluster)?
        .ok_or(VKernelError::BadState("server had no pending request"))?;
    // 4. the client's Send unblocks with the reply
    let reply = cluster
        .collect_reply(client)
        .ok_or(VKernelError::BadState("no reply"))?;
    if reply.payload_str() != "OK" {
        return Err(VKernelError::BadState("server refused the read"));
    }
    Ok((
        segment,
        ReadOutcome {
            bytes: size,
            transfer: outcome,
        },
    ))
}

fn encode_read_request(name: &str, segment: SegmentId) -> VMessage {
    let mut payload = Vec::with_capacity(31);
    payload.extend_from_slice(name.as_bytes());
    payload.push(0);
    payload.extend_from_slice(&segment.0.to_be_bytes());
    VMessage::new(MessageKind::ReadFile, &payload)
}

fn decode_segment_id(msg: &VMessage) -> SegmentId {
    let p = msg.payload();
    let nul = p.iter().position(|&b| b == 0).unwrap_or(p.len());
    let mut id = [0u8; 4];
    if nul + 5 <= p.len() {
        id.copy_from_slice(&p[nul + 1..nul + 5]);
    }
    SegmentId(u32::from_be_bytes(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VCluster, FileServer, Pid) {
        let mut c = VCluster::new();
        let k0 = c.add_kernel("workstation");
        let k1 = c.add_kernel("server-machine");
        let client = c.create_process(k0, "client");
        let fs_pid = c.create_process(k1, "fileserver");
        let mut fs = FileServer::new(fs_pid);
        fs.put("/etc/motd", b"welcome to the V system\n".to_vec());
        fs.put("/big", (0..64 * 1024).map(|i| (i % 251) as u8).collect());
        (c, fs, client)
    }

    #[test]
    fn full_read_sequence_delivers_file() {
        let (mut c, mut fs, client) = setup();
        let (seg, outcome) = client_read(&mut c, &mut fs, client, "/etc/motd").unwrap();
        assert_eq!(
            c.segment(client, seg).unwrap(),
            b"welcome to the V system\n"
        );
        assert_eq!(outcome.bytes, 24);
        assert!(outcome.transfer.remote);
        assert_eq!(fs.reads_served, 1);
    }

    #[test]
    fn big_read_costs_table_3_time() {
        let (mut c, mut fs, client) = setup();
        let before = c.clock_ms;
        let (seg, outcome) = client_read(&mut c, &mut fs, client, "/big").unwrap();
        assert_eq!(outcome.bytes, 64 * 1024);
        // The MoveTo itself is the Table 3 value…
        assert!((outcome.transfer.elapsed_ms - 172.82).abs() < 0.01);
        // …and the whole sequence adds the request and reply packets.
        let total = c.clock_ms - before;
        assert!(total > outcome.transfer.elapsed_ms);
        assert!(total < outcome.transfer.elapsed_ms + 10.0);
        let data = c.segment(client, seg).unwrap();
        assert_eq!(data.len(), 64 * 1024);
        assert_eq!(data[1000], (1000 % 251) as u8);
    }

    #[test]
    fn missing_file_gets_error_reply() {
        let (mut c, mut fs, client) = setup();
        let err = client_read(&mut c, &mut fs, client, "/nope").unwrap_err();
        assert!(matches!(err, VKernelError::BadState(_)));

        // Manual request for a missing file: server replies ENOENT.
        let seg = c.register_segment(client, 8).unwrap();
        let msg = encode_read_request("/nope", seg);
        c.send(client, fs.pid, msg).unwrap();
        let served = fs.serve_one(&mut c).unwrap();
        assert!(served.is_none());
        let reply = c.collect_reply(client).unwrap();
        assert_eq!(reply.payload_str(), "ENOENT");
    }

    #[test]
    fn serve_one_with_empty_mailbox_is_none() {
        let (mut c, mut fs, _) = setup();
        assert!(fs.serve_one(&mut c).unwrap().is_none());
    }

    #[test]
    fn non_read_requests_are_rejected_politely() {
        let (mut c, mut fs, client) = setup();
        c.send(client, fs.pid, VMessage::new(MessageKind::Data, b"?"))
            .unwrap();
        assert!(fs.serve_one(&mut c).unwrap().is_none());
        assert_eq!(c.collect_reply(client).unwrap().payload_str(), "EBADREQ");
    }

    #[test]
    fn segment_id_roundtrips_through_message() {
        let msg = encode_read_request("/a/b/c", SegmentId(0xDEAD));
        assert_eq!(decode_segment_id(&msg), SegmentId(0xDEAD));
        assert_eq!(msg.payload_str(), "/a/b/c");
    }

    #[test]
    fn lossy_network_read_still_correct() {
        let mut c = VCluster::new().with_loss(0.05, 1234);
        let k0 = c.add_kernel("a");
        let k1 = c.add_kernel("b");
        let client = c.create_process(k0, "client");
        let fs_pid = c.create_process(k1, "fs");
        let mut fs = FileServer::new(fs_pid);
        let contents: Vec<u8> = (0..32 * 1024).map(|i| (i * 7 % 255) as u8).collect();
        fs.put("/data", contents.clone());
        let (seg, outcome) = client_read(&mut c, &mut fs, client, "/data").unwrap();
        assert_eq!(c.segment(client, seg).unwrap(), &contents[..]);
        assert!(outcome.transfer.elapsed_ms > 0.0);
    }
}
