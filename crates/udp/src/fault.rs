//! Fault injection for channels.
//!
//! Loopback UDP virtually never loses packets, so retransmission paths
//! would go untested without injected faults.  [`FaultyChannel`] wraps
//! any [`Channel`] and applies — deterministically from a seed —
//! the four classic datagram pathologies: loss, duplication,
//! reordering and corruption.  Corrupted packets are *delivered*: the
//! wire-format checksums in `blast-wire` must turn them into drops,
//! exactly as the Ethernet FCS did on the paper's hardware.

use std::io;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::channel::Channel;

/// Two-state Gilbert–Elliott burst-loss parameters (each probability
/// in `0.0..=1.0`).
///
/// A hidden Markov chain alternates between a *good* and a *bad*
/// state, each with its own iid loss probability.  Real LAN loss is
/// bursty — a swamped receiving interface drops packets in runs — and
/// iid loss flatters protocols that cannot ride out such runs.  The
/// chain steps once per outgoing packet, then the packet is dropped
/// with the current state's probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(good → bad) per packet.
    pub p_enter: f64,
    /// P(bad → good) per packet.
    pub p_exit: f64,
    /// Loss probability while in the good state.
    pub good_loss: f64,
    /// Loss probability while in the bad state.
    pub bad_loss: f64,
}

impl GilbertElliott {
    /// A typical LAN burst profile: mostly clean, but ~`p_enter` of
    /// packets tip the channel into a bad state that drops half of
    /// everything until it exits (mean burst ≈ `1/p_exit` packets).
    pub fn lan_bursts(p_enter: f64) -> Self {
        GilbertElliott {
            p_enter,
            p_exit: 0.25,
            good_loss: 0.0,
            bad_loss: 0.5,
        }
    }
}

/// Per-packet fault probabilities (each in `0.0..=1.0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Drop the outgoing packet entirely.
    pub drop: f64,
    /// Send the packet twice.
    pub duplicate: f64,
    /// Hold the packet back and send it *after* the next one.
    pub reorder: f64,
    /// Flip one random bit of the payload before sending.
    pub corrupt: f64,
    /// Bursty loss instead of iid: when set, the Gilbert–Elliott chain
    /// decides drops and `drop` is ignored.
    pub burst: Option<GilbertElliott>,
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        FaultConfig {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            burst: None,
        }
    }

    /// Loss only, probability `p` — the paper's error model.
    pub fn loss(p: f64) -> Self {
        FaultConfig {
            drop: p,
            ..Self::none()
        }
    }

    /// A stress mix exercising every pathology at once.
    pub fn chaos(p: f64) -> Self {
        FaultConfig {
            drop: p,
            duplicate: p,
            reorder: p,
            corrupt: p,
            burst: None,
        }
    }

    /// Bursty loss only — the Gilbert–Elliott chain decides drops.
    pub fn burst_loss(ge: GilbertElliott) -> Self {
        FaultConfig {
            burst: Some(ge),
            ..Self::none()
        }
    }

    fn validate(&self) {
        let mut probs = vec![
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("corrupt", self.corrupt),
        ];
        if let Some(ge) = &self.burst {
            probs.extend([
                ("burst.p_enter", ge.p_enter),
                ("burst.p_exit", ge.p_exit),
                ("burst.good_loss", ge.good_loss),
                ("burst.bad_loss", ge.bad_loss),
            ]);
        }
        for (name, v) in probs {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} probability out of range: {v}"
            );
        }
    }
}

/// A channel wrapper that injects faults on the **send** side.
#[derive(Debug)]
pub struct FaultyChannel<C: Channel> {
    inner: C,
    config: FaultConfig,
    rng: SmallRng,
    /// Gilbert–Elliott channel state (`true` = bad state).
    ge_bad: bool,
    /// Packet held back for reordering.
    held: Option<Vec<u8>>,
    /// Counters for test assertions.
    pub dropped: u64,
    /// Packets sent twice.
    pub duplicated: u64,
    /// Packets delivered out of order.
    pub reordered: u64,
    /// Packets with a flipped bit.
    pub corrupted: u64,
}

impl<C: Channel> FaultyChannel<C> {
    /// Wrap `inner`, injecting faults per `config`, deterministically
    /// from `seed`.
    pub fn new(inner: C, config: FaultConfig, seed: u64) -> Self {
        config.validate();
        FaultyChannel {
            inner,
            config,
            rng: SmallRng::seed_from_u64(seed),
            ge_bad: false,
            held: None,
            dropped: 0,
            duplicated: 0,
            reordered: 0,
            corrupted: 0,
        }
    }

    /// The wrapped channel.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// One drop decision: step the Gilbert–Elliott chain if burst loss
    /// is configured, else fall back to the iid `drop` probability.
    fn should_drop(&mut self) -> bool {
        let Some(ge) = self.config.burst else {
            return self.chance(self.config.drop);
        };
        let flip = self.rng.gen::<f64>();
        self.ge_bad = if self.ge_bad {
            flip >= ge.p_exit
        } else {
            flip < ge.p_enter
        };
        let p = if self.ge_bad {
            ge.bad_loss
        } else {
            ge.good_loss
        };
        self.chance(p)
    }
}

impl<C: Channel> Channel for FaultyChannel<C> {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        // Release any held packet *after* this one (reorder complete).
        let release = self.held.take();

        if self.should_drop() {
            self.dropped += 1;
            // Still release the held packet, else it could be stuck
            // behind a dropped one forever.
            if let Some(p) = release {
                self.inner.send(&p)?;
            }
            return Ok(());
        }

        let mut packet = buf.to_vec();
        if self.chance(self.config.corrupt) && !packet.is_empty() {
            let byte = self.rng.gen_range(0..packet.len());
            let bit = self.rng.gen_range(0u32..8);
            packet[byte] ^= 1u8 << bit;
            self.corrupted += 1;
        }

        if self.chance(self.config.reorder) && release.is_none() {
            // Hold this packet; it goes out after the next send.
            self.held = Some(packet);
            self.reordered += 1;
            return Ok(());
        }

        self.inner.send(&packet)?;
        if self.chance(self.config.duplicate) {
            self.inner.send(&packet)?;
            self.duplicated += 1;
        }
        if let Some(p) = release {
            self.inner.send(&p)?;
        }
        Ok(())
    }

    fn recv_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>> {
        self.inner.recv_timeout(buf, timeout)
    }

    fn set_recorder(&mut self, recorder: blast_telemetry::Recorder) {
        self.inner.set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// An in-memory loopback channel for deterministic unit tests.
    #[derive(Default)]
    struct MemChannel {
        sent: VecDeque<Vec<u8>>,
    }

    impl Channel for MemChannel {
        fn send(&mut self, buf: &[u8]) -> io::Result<()> {
            self.sent.push_back(buf.to_vec());
            Ok(())
        }

        fn recv_timeout(
            &mut self,
            buf: &mut [u8],
            _timeout: Duration,
        ) -> io::Result<Option<usize>> {
            match self.sent.pop_front() {
                Some(p) => {
                    buf[..p.len()].copy_from_slice(&p);
                    Ok(Some(p.len()))
                }
                None => Ok(None),
            }
        }
    }

    #[test]
    fn no_faults_passes_through() {
        let mut ch = FaultyChannel::new(MemChannel::default(), FaultConfig::none(), 1);
        for i in 0..50u8 {
            ch.send(&[i]).unwrap();
        }
        let inner = ch.into_inner();
        assert_eq!(inner.sent.len(), 50);
        for (i, p) in inner.sent.iter().enumerate() {
            assert_eq!(p[0], i as u8, "order preserved");
        }
    }

    #[test]
    fn full_drop_drops_everything() {
        let mut ch = FaultyChannel::new(MemChannel::default(), FaultConfig::loss(1.0), 1);
        for _ in 0..10 {
            ch.send(b"x").unwrap();
        }
        assert_eq!(ch.dropped, 10);
        assert!(ch.into_inner().sent.is_empty());
    }

    #[test]
    fn duplicate_always_sends_twice() {
        let cfg = FaultConfig {
            duplicate: 1.0,
            ..FaultConfig::none()
        };
        let mut ch = FaultyChannel::new(MemChannel::default(), cfg, 1);
        ch.send(b"a").unwrap();
        assert_eq!(ch.duplicated, 1);
        assert_eq!(ch.into_inner().sent.len(), 2);
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let cfg = FaultConfig {
            corrupt: 1.0,
            ..FaultConfig::none()
        };
        let mut ch = FaultyChannel::new(MemChannel::default(), cfg, 7);
        let original = [0u8; 32];
        ch.send(&original).unwrap();
        assert_eq!(ch.corrupted, 1);
        let sent = ch.into_inner().sent.pop_front().unwrap();
        let flipped: u32 = sent.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
    }

    #[test]
    fn reorder_swaps_adjacent_packets() {
        let cfg = FaultConfig {
            reorder: 1.0,
            ..FaultConfig::none()
        };
        let mut ch = FaultyChannel::new(MemChannel::default(), cfg, 3);
        ch.send(b"1").unwrap(); // held
        ch.send(b"2").unwrap(); // "2" held? — release rule: "1" follows "2"
        ch.send(b"3").unwrap();
        ch.send(b"4").unwrap();
        let inner = ch.into_inner();
        let order: Vec<u8> = inner.sent.iter().map(|p| p[0]).collect();
        // With reorder = 1.0 adjacent pairs swap: 2,1,4,3.
        assert_eq!(order, vec![b'2', b'1', b'4', b'3']);
    }

    #[test]
    fn reordered_packet_not_lost_behind_drop() {
        let cfg = FaultConfig {
            reorder: 1.0,
            drop: 0.0,
            ..FaultConfig::none()
        };
        let mut ch = FaultyChannel::new(MemChannel::default(), cfg, 3);
        ch.send(b"a").unwrap();
        // Change config to always drop, then send: held "a" must still
        // be released.
        ch.config = FaultConfig::loss(1.0);
        ch.send(b"b").unwrap();
        let inner = ch.into_inner();
        assert_eq!(inner.sent.len(), 1);
        assert_eq!(inner.sent[0], b"a");
    }

    #[test]
    fn determinism_by_seed() {
        let run = |seed| {
            let mut ch = FaultyChannel::new(MemChannel::default(), FaultConfig::chaos(0.3), seed);
            for i in 0..100u8 {
                ch.send(&[i]).unwrap();
            }
            (ch.dropped, ch.duplicated, ch.reordered, ch.corrupted)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_rejected() {
        let _ = FaultyChannel::new(MemChannel::default(), FaultConfig::loss(2.0), 1);
    }

    #[test]
    fn burst_loss_extremes() {
        // Chain that can never leave the good state drops nothing.
        let never = GilbertElliott {
            p_enter: 0.0,
            p_exit: 1.0,
            good_loss: 0.0,
            bad_loss: 1.0,
        };
        let mut ch = FaultyChannel::new(MemChannel::default(), FaultConfig::burst_loss(never), 1);
        for _ in 0..50 {
            ch.send(b"x").unwrap();
        }
        assert_eq!(ch.dropped, 0);

        // Chain that enters (and never leaves) a total-loss bad state
        // drops everything.
        let always = GilbertElliott {
            p_enter: 1.0,
            p_exit: 0.0,
            good_loss: 0.0,
            bad_loss: 1.0,
        };
        let mut ch = FaultyChannel::new(MemChannel::default(), FaultConfig::burst_loss(always), 1);
        for _ in 0..50 {
            ch.send(b"x").unwrap();
        }
        assert_eq!(ch.dropped, 50);
    }

    #[test]
    fn burst_loss_comes_in_runs() {
        // Bad state drops everything and lasts 1/p_exit = 4 packets on
        // average: drops must cluster, not scatter like iid loss.
        let ge = GilbertElliott {
            p_enter: 0.05,
            p_exit: 0.25,
            good_loss: 0.0,
            bad_loss: 1.0,
        };
        let mut ch = FaultyChannel::new(MemChannel::default(), FaultConfig::burst_loss(ge), 42);
        let mut pattern = Vec::new();
        for i in 0..2000u32 {
            let before = ch.dropped;
            ch.send(&i.to_le_bytes()).unwrap();
            pattern.push(ch.dropped > before);
        }
        let dropped = pattern.iter().filter(|&&d| d).count();
        assert!(dropped > 0, "the bad state should have bitten");
        let runs = pattern.windows(2).filter(|w| w[1] && !w[0]).count() + usize::from(pattern[0]);
        let mean_run = dropped as f64 / runs as f64;
        assert!(
            mean_run > 2.0,
            "drops should arrive in runs (mean run length {mean_run:.2} from \
             {dropped} drops in {runs} runs)"
        );
    }

    #[test]
    #[should_panic(expected = "burst.p_exit probability out of range")]
    fn invalid_burst_probability_rejected() {
        let ge = GilbertElliott {
            p_enter: 0.1,
            p_exit: 7.0,
            good_loss: 0.0,
            bad_loss: 1.0,
        };
        let _ = FaultyChannel::new(MemChannel::default(), FaultConfig::burst_loss(ge), 1);
    }
}
