//! # blast-stats — measurement support for the blastlan experiments
//!
//! The paper's evaluation is built from repeated timed trials ("for
//! statistical accuracy, the experiment is repeated a number of times
//! and the results are averaged", §2.1.1), expected values and standard
//! deviations (§3), and a handful of tables and figures.  This crate
//! provides exactly those instruments:
//!
//! * [`online`] — numerically-stable streaming mean/variance (Welford),
//!   so a million simulated trials need O(1) memory;
//! * [`histogram`] — fixed-bucket and log-scale histograms with
//!   percentile queries, for looking at elapsed-time distributions
//!   beyond their first two moments;
//! * [`ci`] — Student-t confidence intervals for trial means;
//! * [`table`] — plain-text table rendering for the Table 1/2/3
//!   reproductions;
//! * [`chart`] — ASCII line charts with linear or logarithmic axes, for
//!   the Figure 4/5/6 reproductions;
//! * [`experiment`] — a seeded multi-trial runner that folds per-trial
//!   measurements into summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod ci;
pub mod experiment;
pub mod histogram;
pub mod online;
pub mod table;

pub use chart::Chart;
pub use ci::ConfidenceInterval;
pub use experiment::{Experiment, TrialSummary};
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use table::Table;
