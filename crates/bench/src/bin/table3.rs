//! Table 3 — "V Kernel MoveTo Measurements".
//!
//! Runs real `MoveTo` operations through the miniature V kernel of
//! `blast-vkernel` (request → blast over the simulated Ethernet with
//! the §2.2 kernel-inflated copy costs → reply), for the table's sizes.
//! The paper's quoted anchors: `To(1) = 5.9 ms`, `To(64 KB) = 173 ms`.

use blast_analytic::{CostModel, ErrorFree};
use blast_bench::payload;
use blast_stats::table::fmt_ms;
use blast_stats::Table;
use blast_vkernel::VCluster;

fn main() {
    let ef = ErrorFree::new(CostModel::vkernel_sun());
    let mut table = Table::new(&[
        "size",
        "MoveTo model (ms)",
        "MoveTo measured (ms)",
        "packets",
    ])
    .with_title("Table 3: V kernel MoveTo (remote, error-free)");

    for kb in [1usize, 4, 16, 64] {
        let mut cluster = VCluster::new();
        let k0 = cluster.add_kernel("client-ws");
        let k1 = cluster.add_kernel("server-ws");
        let src_proc = cluster.create_process(k1, "source");
        let dst_proc = cluster.create_process(k0, "sink");
        let data = payload(kb * 1024);
        let src = cluster.register_segment_with(src_proc, &data).unwrap();
        let dst = cluster.register_segment(dst_proc, data.len()).unwrap();
        let out = cluster.move_to(src_proc, src, dst_proc, dst).unwrap();
        table.row(&[
            &format!("{kb} KB"),
            &fmt_ms(ef.blast(kb as u64)),
            &fmt_ms(out.elapsed_ms),
            &out.sender_stats.data_packets_sent.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper anchors: To(1) = 5.9 ms, To(64 KB) = 173 ms");
    println!(
        "model:         To(1) = {} ms, To(64 KB) = {} ms",
        fmt_ms(ef.saw(1)),
        fmt_ms(ef.blast(64))
    );
    println!();
    println!(
        "kernel overhead raises C from 1.35 to 1.83 ms and Ca from 0.17 to 0.67 ms \
         (headers, access checking, demultiplexing, interrupt handling — §2.2)."
    );

    // Local MoveTo for contrast: no network, one direct copy.
    let mut cluster = VCluster::new();
    let k0 = cluster.add_kernel("solo");
    let a = cluster.create_process(k0, "a");
    let b = cluster.create_process(k0, "b");
    let data = payload(64 * 1024);
    let src = cluster.register_segment_with(a, &data).unwrap();
    let dst = cluster.register_segment(b, data.len()).unwrap();
    let out = cluster.move_to(a, src, b, dst).unwrap();
    println!(
        "local 64 KB MoveTo (same machine, direct copy): {} ms",
        fmt_ms(out.elapsed_ms)
    );
}
