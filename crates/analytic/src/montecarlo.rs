//! Monte-Carlo simulation of the four retransmission strategies, at the
//! paper's level of abstraction.
//!
//! §3.2.3: "Certain of these retransmission strategies lead themselves
//! to exact analytical evaluation, while others are more easily
//! evaluated by approximation or simulation. … We have simulated the
//! procedures by computer and determined both the expected time and the
//! variance from the simulation."  This module is that computer
//! simulation: packets are Bernoulli trials, elapsed time comes from the
//! [`CostModel`], and the strategy logic mirrors
//! `blast_core::blast` round for round.
//!
//! Two layers of fidelity exist in this workspace:
//!
//! 1. this module — fast (millions of trials), no engine code,
//!    validates the closed forms in [`crate::variance`] and generates
//!    Figure 5/6 curves;
//! 2. `blast-sim` — runs the *actual* protocol engines over the
//!    simulated network; slower, but measures the real implementation.
//!
//! Agreement between the two (and with the closed forms) is asserted in
//! the integration tests.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use blast_stats::OnlineStats;

use crate::cost::CostModel;

/// Retransmission strategy, mirroring
/// `blast_core::config::RetxStrategy` (duplicated here so the analytic
/// crate stays engine-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Full retransmission on error, positive acks only.
    FullNoNack,
    /// Full retransmission with a NACK after the last packet.
    FullNack,
    /// Retransmit from the first packet not received.
    GoBackN,
    /// Retransmit exactly the packets not received.
    Selective,
}

impl Strategy {
    /// All four, in the paper's order.
    pub const ALL: [Strategy; 4] = [
        Strategy::FullNoNack,
        Strategy::FullNack,
        Strategy::GoBackN,
        Strategy::Selective,
    ];
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::FullNoNack => "full-no-nack",
            Strategy::FullNack => "full-nack",
            Strategy::GoBackN => "go-back-n",
            Strategy::Selective => "selective",
        };
        f.write_str(s)
    }
}

/// Monte-Carlo experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Number of data packets `D`.
    pub d: u64,
    /// iid packet loss probability `p_n`.
    pub p_n: f64,
    /// Retransmission interval `T_r` (ms).
    pub t_r: f64,
    /// Trials to run.
    pub trials: u64,
    /// RNG seed.
    pub seed: u64,
    /// Cost constants.
    pub model: CostModel,
    /// Abort a trial after this many rounds (guards `p_n → 1`).
    pub max_rounds: u64,
}

impl McConfig {
    /// Paper-flavoured defaults: `D = 64`, V-kernel costs,
    /// `T_r = To(D) = 173 ms`, 10 000 trials.
    pub fn paper_default(p_n: f64) -> Self {
        let model = CostModel::vkernel_sun();
        let t0_d = crate::errorfree::ErrorFree::new(model).blast(64);
        McConfig {
            d: 64,
            p_n,
            t_r: t0_d,
            trials: 10_000,
            seed: 0x5EED,
            model,
            max_rounds: 1_000_000,
        }
    }

    /// Builder-style trial count.
    pub fn with_trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Builder-style timeout.
    pub fn with_t_r(mut self, t_r: f64) -> Self {
        self.t_r = t_r;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Monte-Carlo results.
#[derive(Debug, Clone, Copy)]
pub struct McResult {
    /// Mean elapsed time (ms).
    pub mean: f64,
    /// Population standard deviation (ms) — the paper's `σ`.
    pub stddev: f64,
    /// Mean retransmission rounds beyond the first.
    pub mean_rounds: f64,
    /// Trials that hit `max_rounds` and were discarded.
    pub aborted: u64,
    /// Trials measured.
    pub trials: u64,
}

/// Run the Monte-Carlo experiment for one strategy.
pub fn simulate(strategy: Strategy, cfg: &McConfig) -> McResult {
    let mut stats = OnlineStats::new();
    let mut rounds_stats = OnlineStats::new();
    let mut aborted = 0u64;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.trials {
        match one_trial(strategy, cfg, &mut rng) {
            Some((elapsed, rounds)) => {
                stats.push(elapsed);
                rounds_stats.push(rounds as f64);
            }
            None => aborted += 1,
        }
    }
    McResult {
        mean: stats.mean(),
        stddev: stats.population_stddev(),
        mean_rounds: rounds_stats.mean(),
        aborted,
        trials: stats.count(),
    }
}

fn lost(rng: &mut SmallRng, p_n: f64) -> bool {
    p_n > 0.0 && rng.gen::<f64>() < p_n
}

/// One simulated transfer; returns `(elapsed_ms, retransmission_rounds)`
/// or `None` if `max_rounds` was exceeded.
fn one_trial(strategy: Strategy, cfg: &McConfig, rng: &mut SmallRng) -> Option<(f64, u64)> {
    match strategy {
        Strategy::FullNoNack | Strategy::FullNack => full_retx_trial(strategy, cfg, rng),
        Strategy::GoBackN | Strategy::Selective => partial_retx_trial(strategy, cfg, rng),
    }
}

/// Strategies 1 and 2, in the paper's memoryless-attempt model (§3.1.2):
/// an attempt succeeds iff all `D` data packets *and* the report pass;
/// a failed attempt costs `To(D) + T_r` (strategy 1; the paper's
/// footnote subsumes the failed attempt's true elapsed time into `T_r`)
/// or `To(D)` when a NACK short-circuits the timeout (strategy 2).
fn full_retx_trial(strategy: Strategy, cfg: &McConfig, rng: &mut SmallRng) -> Option<(f64, u64)> {
    let ef = crate::errorfree::ErrorFree::new(cfg.model);
    let t0 = ef.blast(cfg.d);
    let mut elapsed = 0.0;
    let mut rounds = 0u64;
    loop {
        if rounds > cfg.max_rounds {
            return None;
        }
        // D data packets and the final report each traverse the wire.
        let mut all_data = true;
        let mut last_arrived = true;
        for i in 0..cfg.d {
            if lost(rng, cfg.p_n) {
                all_data = false;
                if i == cfg.d - 1 {
                    last_arrived = false;
                }
            }
        }
        let report_arrived = !lost(rng, cfg.p_n);
        if all_data && report_arrived {
            elapsed += t0;
            return Some((elapsed, rounds));
        }
        rounds += 1;
        let nacked = strategy == Strategy::FullNack && last_arrived && report_arrived;
        if nacked {
            // NACK received right after the round: retry immediately.
            elapsed += t0;
        } else {
            // Silence: wait out the retransmission interval.
            elapsed += t0 + cfg.t_r;
        }
    }
}

/// Strategies 3 and 4 — stateful rounds, mirroring
/// `blast_core::blast::BlastSender` exactly: each round sends a set `S`
/// whose last element solicits the report; timeouts resend only that
/// reliable packet.
fn partial_retx_trial(
    strategy: Strategy,
    cfg: &McConfig,
    rng: &mut SmallRng,
) -> Option<(f64, u64)> {
    let d = cfg.d as usize;
    let m = &cfg.model;
    let mut received = vec![false; d];
    let mut elapsed = 0.0;
    let mut rounds = 0u64;
    // Current round: a contiguous start (go-back-n) or explicit set
    // (selective).  Round 0 is everything.
    let mut set: Vec<usize> = (0..d).collect();
    loop {
        if rounds > cfg.max_rounds {
            return None;
        }
        let k = set.len() as u64;
        let reliable = *set.last().expect("rounds are never empty");
        let mut reliable_arrived = false;
        for &s in &set {
            if !lost(rng, cfg.p_n) {
                received[s] = true;
                if s == reliable {
                    reliable_arrived = true;
                }
            }
        }
        let report_arrived = reliable_arrived && !lost(rng, cfg.p_n);
        if report_arrived {
            elapsed += m.blast_send_time(k) + m.reply_tail();
            let first_missing = received.iter().position(|&r| !r);
            match first_missing {
                None => return Some((elapsed, rounds)),
                Some(f) => {
                    rounds += 1;
                    set = match strategy {
                        Strategy::GoBackN => (f..d).collect(),
                        Strategy::Selective => (0..d).filter(|&i| !received[i]).collect(),
                        _ => unreachable!("partial_retx_trial only handles 3/4"),
                    };
                }
            }
        } else {
            // No report: timeout, then re-solicit with the reliable
            // packet alone.
            elapsed += m.blast_send_time(k) + cfg.t_r;
            rounds += 1;
            set = vec![reliable];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errorfree::ErrorFree;
    use crate::errors::ExpectedTime;
    use crate::variance::StdDev;

    fn cfg(p_n: f64, trials: u64) -> McConfig {
        McConfig::paper_default(p_n).with_trials(trials)
    }

    #[test]
    fn zero_loss_is_deterministic_floor() {
        let ef = ErrorFree::new(CostModel::vkernel_sun());
        for strategy in Strategy::ALL {
            let r = simulate(strategy, &cfg(0.0, 100));
            assert!((r.mean - ef.blast(64)).abs() < 1e-9, "{strategy}");
            assert_eq!(r.stddev, 0.0, "{strategy}");
            assert_eq!(r.mean_rounds, 0.0, "{strategy}");
            assert_eq!(r.aborted, 0);
        }
    }

    #[test]
    fn mc_validates_expected_time_closed_form() {
        // Strategy 1's mean must match §3.1.2's formula.
        let x = ExpectedTime::new(CostModel::vkernel_sun());
        for p_n in [1e-3, 1e-2] {
            let c = cfg(p_n, 60_000);
            let r = simulate(Strategy::FullNoNack, &c);
            let closed = x.blast_full_retx(64, p_n, c.t_r);
            let rel = (r.mean - closed).abs() / closed;
            assert!(rel < 0.02, "p_n={p_n}: mc {} vs closed {closed}", r.mean);
        }
    }

    #[test]
    fn mc_validates_stddev_closed_forms() {
        let s = StdDev::new(CostModel::vkernel_sun());
        // Strategy 1.
        let c = cfg(1e-2, 120_000);
        let r = simulate(Strategy::FullNoNack, &c);
        let closed = s.full_no_nack(64, 1e-2, c.t_r);
        let rel = (r.stddev - closed).abs() / closed;
        assert!(rel < 0.05, "no-nack: mc {} vs closed {closed}", r.stddev);
        // Strategy 2 (exact compound form).
        let r = simulate(Strategy::FullNack, &c);
        let closed = s.full_nack(64, 1e-2, c.t_r);
        let rel = (r.stddev - closed).abs() / closed;
        assert!(rel < 0.08, "nack: mc {} vs closed {closed}", r.stddev);
    }

    #[test]
    fn figure_6_ordering_no_nack_worst_selective_best() {
        // At p_n = 1e-3 with T_r = To(D): σ₁ ≥ σ₂ ≥ σ₃ ≥ σ₄ (allowing
        // MC noise).  This is exactly the ordering Figure 6 shows.
        let c = cfg(1e-3, 60_000);
        let sig: Vec<f64> = Strategy::ALL
            .iter()
            .map(|&s| simulate(s, &c).stddev)
            .collect();
        assert!(
            sig[0] > sig[1] * 0.95,
            "no-nack {} vs nack {}",
            sig[0],
            sig[1]
        );
        assert!(sig[1] > sig[2] * 0.95, "nack {} vs gbn {}", sig[1], sig[2]);
        assert!(
            sig[2] > sig[3] * 0.80,
            "gbn {} vs selective {}",
            sig[2],
            sig[3]
        );
        // And the headline: go-back-n is "not significantly worse" than
        // selective, while no-NACK is dramatically worse than both.
        // (A single loss costs go-back-n a position-dependent tail but
        // selective exactly one packet, so σ₃/σ₄ sits near 3 at this
        // error rate; bound it at 4 to absorb MC noise.)
        assert!(sig[0] > 3.0 * sig[2]);
        assert!(sig[2] < 4.0 * sig[3].max(1e-9));
    }

    #[test]
    fn partial_strategies_have_near_floor_expected_time() {
        // §3.2.4: with NACK-directed retransmission the expected time
        // stays near To(D) even where full retransmission suffers.
        let ef = ErrorFree::new(CostModel::vkernel_sun());
        let floor = ef.blast(64);
        let c = cfg(1e-2, 20_000);
        let gbn = simulate(Strategy::GoBackN, &c);
        let full = simulate(Strategy::FullNoNack, &c);
        assert!(
            gbn.mean < floor * 1.35,
            "gbn mean {} vs floor {floor}",
            gbn.mean
        );
        assert!(
            full.mean > gbn.mean,
            "full {} must exceed gbn {}",
            full.mean,
            gbn.mean
        );
    }

    #[test]
    fn selective_resends_fewer_rounds_than_gobackn_on_average() {
        let c = cfg(3e-2, 20_000);
        let gbn = simulate(Strategy::GoBackN, &c);
        let sel = simulate(Strategy::Selective, &c);
        // Selective never needs *more* rounds (it can only shrink the
        // resend set faster); allow MC noise.
        assert!(sel.mean_rounds <= gbn.mean_rounds * 1.05);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let c = cfg(1e-2, 5_000);
        let a = simulate(Strategy::Selective, &c);
        let b = simulate(Strategy::Selective, &c);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.stddev, b.stddev);
        let c2 = c.with_seed(999);
        let d = simulate(Strategy::Selective, &c2);
        assert_ne!(a.mean, d.mean, "different seed should perturb the estimate");
    }

    #[test]
    fn pathological_loss_aborts_cleanly() {
        let mut c = cfg(0.999999, 10);
        c.max_rounds = 50;
        let r = simulate(Strategy::FullNoNack, &c);
        assert_eq!(r.aborted, 10);
        assert_eq!(r.trials, 0);
    }
}
