//! The event vocabulary: one fixed-size record per observable moment.
//!
//! A [`TraceEvent`] is 32 bytes of plain data — no strings, no heap.
//! The two payload words `a`/`b` are interpreted per [`EventKind`]
//! (documented on each variant), which keeps the record path free of
//! formatting while the exporters stay expressive.

use core::fmt;

/// What happened.  The discriminant is the wire/ring encoding; values
/// are stable so drained traces remain decodable across versions.
///
/// The `a`/`b` conventions below are what the in-tree hooks emit; the
/// recorder itself does not interpret them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A blast round began: `a` = retransmission round number,
    /// `b` = data packets offered this round.
    RoundStart = 1,
    /// The round's status report was resolved: `a` = round number,
    /// `b` = 0 clean / 1 NACKed / 2 timed out.
    RoundEnd = 2,
    /// A negative acknowledgement arrived: `a` = round number,
    /// `b` = packets the receiver reported missing (0 if unknown).
    NackReceived = 3,
    /// A retransmission round is being charged: `a` = round number,
    /// `b` = packets queued for retransmission.
    RetxRound = 4,
    /// The estimator accepted an RTT sample: `a` = sample ns,
    /// `b` = smoothed RTT ns after folding it in.
    RttSample = 5,
    /// A sample was rejected by Karn's rule (the solicit was
    /// retransmitted, so the pairing is ambiguous): `a` = round number.
    KarnReject = 6,
    /// AIMD pacer grew the burst after a clean round: `a` = old burst,
    /// `b` = new burst.
    PacerGrow = 7,
    /// AIMD pacer halved the burst on loss: `a` = old burst,
    /// `b` = new burst.
    PacerShrink = 8,
    /// Retransmission timeout backed off: `a` = old RTO ns,
    /// `b` = new RTO ns.
    RtoBackoff = 9,
    /// The shared buffer pool ran dry and a checkout had to allocate:
    /// `a` = fresh allocations so far, `b` = buffers requested.
    PoolExhausted = 10,
    /// A receiver emitted a status report: `a` = 1 if positive ack,
    /// `b` = packets still missing.
    StatusSend = 11,
    /// The delivery-rate estimator accepted a per-round sample:
    /// `a` = sample rate in bytes/sec, `b` = windowed-max rate in
    /// bytes/sec after folding it in.
    RateSample = 12,
    /// The rate-based pacer recomputed its burst target: `a` = burst
    /// in packets, `b` = windowed-min RTT in ns.
    PaceTarget = 13,
    /// A session entered the node's table: `a` = direction
    /// (0 push / 1 pull), `b` = total data packets.
    SessionAdmit = 16,
    /// A session left the table: `a` = 1 success / 0 failure,
    /// `b` = bytes transferred.
    SessionReap = 17,
    /// One reactor tick that did work: `a` = datagrams drained,
    /// `b` = timers fired.
    ShardTick = 18,
    /// A remote `Stats` snapshot was served: `a` = reply bytes.
    StatsServed = 19,
    /// A third-party copy was admitted (the session field carries the
    /// copy id): `a` = direction (0 push / 1 pull), `b` = the remote
    /// node's port.
    CopyAdmit = 20,
    /// A third-party copy finished: `a` = 1 success / 0 failure,
    /// `b` = bytes moved.
    CopyDone = 21,
    /// A copy submit carried the orchestrating client's trace epoch,
    /// anchoring this host's timeline to the client's: `a` = the
    /// client's epoch (unix ns), `b` = this recorder's epoch (unix ns).
    /// Subtracting aligns the two hosts' spans in one Perfetto view.
    ClockAnchor = 22,
    /// A batched send was submitted to the kernel: `a` = datagrams in
    /// the batch, `b` = syscalls it took.
    BatchSubmit = 24,
    /// The event wait woke on socket readiness: `a` = wait budget ns.
    WakeEvent = 25,
    /// The event wait expired on its timer: `a` = wait budget ns.
    WakeTimeout = 26,
    /// The kernel shed an outbound datagram (ENOBUFS/EAGAIN):
    /// `a` = drops so far.
    SendDrop = 27,
    /// Segmentation-offloaded sends were submitted: `a` = datagrams
    /// that travelled coalesced, `b` = super-datagrams carrying them.
    GsoSubmit = 28,
    /// GRO-coalesced reads were split: `a` = datagrams recovered,
    /// `b` = coalesced buffers they came from.
    GroReceive = 29,
    /// The batched backend probed `UDP_SEGMENT`/`UDP_GRO` at socket
    /// setup: `a` = 1 if GSO is usable, `b` = 1 if GRO is usable.
    OffloadProbe = 30,
    /// The recorder is sampling round-level events: `a` = the period N
    /// (1 in N recorded).  Emitted once when sampling is configured so
    /// exporters can annotate the stream.
    SampleRate = 31,
}

impl EventKind {
    /// Decode a ring/wire discriminant.
    pub fn from_u16(v: u16) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::RoundStart,
            2 => EventKind::RoundEnd,
            3 => EventKind::NackReceived,
            4 => EventKind::RetxRound,
            5 => EventKind::RttSample,
            6 => EventKind::KarnReject,
            7 => EventKind::PacerGrow,
            8 => EventKind::PacerShrink,
            9 => EventKind::RtoBackoff,
            10 => EventKind::PoolExhausted,
            11 => EventKind::StatusSend,
            12 => EventKind::RateSample,
            13 => EventKind::PaceTarget,
            16 => EventKind::SessionAdmit,
            17 => EventKind::SessionReap,
            18 => EventKind::ShardTick,
            19 => EventKind::StatsServed,
            20 => EventKind::CopyAdmit,
            21 => EventKind::CopyDone,
            22 => EventKind::ClockAnchor,
            24 => EventKind::BatchSubmit,
            25 => EventKind::WakeEvent,
            26 => EventKind::WakeTimeout,
            27 => EventKind::SendDrop,
            28 => EventKind::GsoSubmit,
            29 => EventKind::GroReceive,
            30 => EventKind::OffloadProbe,
            31 => EventKind::SampleRate,
            _ => return None,
        })
    }

    /// Kinds exempt from sampling (see `Recorder::sample_every`):
    /// session/copy lifecycle, loss and error signals, and one-shot
    /// annotations — everything whose absence would make a sampled
    /// trace misleading rather than merely sparser.
    pub fn always_recorded(self) -> bool {
        matches!(
            self,
            EventKind::NackReceived
                | EventKind::RetxRound
                | EventKind::KarnReject
                | EventKind::RtoBackoff
                | EventKind::PoolExhausted
                | EventKind::SessionAdmit
                | EventKind::SessionReap
                | EventKind::CopyAdmit
                | EventKind::CopyDone
                | EventKind::ClockAnchor
                | EventKind::SendDrop
                | EventKind::OffloadProbe
                | EventKind::SampleRate
        )
    }

    /// Stable kebab-case label, used by both exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::RoundStart => "round-start",
            EventKind::RoundEnd => "round-end",
            EventKind::NackReceived => "nack",
            EventKind::RetxRound => "retx-round",
            EventKind::RttSample => "rtt-sample",
            EventKind::KarnReject => "karn-reject",
            EventKind::PacerGrow => "pacer-grow",
            EventKind::PacerShrink => "pacer-shrink",
            EventKind::RtoBackoff => "rto-backoff",
            EventKind::PoolExhausted => "pool-exhausted",
            EventKind::StatusSend => "status-send",
            EventKind::RateSample => "rate-sample",
            EventKind::PaceTarget => "pace-target",
            EventKind::SessionAdmit => "session-admit",
            EventKind::SessionReap => "session-reap",
            EventKind::ShardTick => "shard-tick",
            EventKind::StatsServed => "stats-served",
            EventKind::CopyAdmit => "copy-admit",
            EventKind::CopyDone => "copy-done",
            EventKind::ClockAnchor => "clock-anchor",
            EventKind::BatchSubmit => "batch-submit",
            EventKind::WakeEvent => "wake-event",
            EventKind::WakeTimeout => "wake-timeout",
            EventKind::SendDrop => "send-drop",
            EventKind::GsoSubmit => "gso-submit",
            EventKind::GroReceive => "gro-receive",
            EventKind::OffloadProbe => "offload-probe",
            EventKind::SampleRate => "sample-rate",
        }
    }

    /// Every defined kind, for exhaustive tests.
    pub const ALL: [EventKind; 28] = [
        EventKind::RoundStart,
        EventKind::RoundEnd,
        EventKind::NackReceived,
        EventKind::RetxRound,
        EventKind::RttSample,
        EventKind::KarnReject,
        EventKind::PacerGrow,
        EventKind::PacerShrink,
        EventKind::RtoBackoff,
        EventKind::PoolExhausted,
        EventKind::StatusSend,
        EventKind::RateSample,
        EventKind::PaceTarget,
        EventKind::SessionAdmit,
        EventKind::SessionReap,
        EventKind::ShardTick,
        EventKind::StatsServed,
        EventKind::CopyAdmit,
        EventKind::CopyDone,
        EventKind::ClockAnchor,
        EventKind::BatchSubmit,
        EventKind::WakeEvent,
        EventKind::WakeTimeout,
        EventKind::SendDrop,
        EventKind::GsoSubmit,
        EventKind::GroReceive,
        EventKind::OffloadProbe,
        EventKind::SampleRate,
    ];
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded moment: fixed size, `Copy`, nothing heap-allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder's epoch (the node's start, a
    /// driver's first tick — any fixed per-run origin).
    pub ts_ns: u64,
    /// The session/transfer the event belongs to (0 = no session:
    /// shard-level events like ticks and IO waits).
    pub session: u32,
    /// The reactor shard (or standalone producer) that recorded it.
    pub shard: u16,
    /// What happened.
    pub kind: EventKind,
    /// First payload word; meaning per [`EventKind`].
    pub a: u64,
    /// Second payload word; meaning per [`EventKind`].
    pub b: u64,
}

impl TraceEvent {
    /// Pack into the ring's four-word slot encoding.
    pub(crate) fn pack(&self) -> [u64; 4] {
        let meta = (u64::from(self.session) << 32)
            | (u64::from(self.shard) << 16)
            | u64::from(self.kind as u16);
        [self.ts_ns, meta, self.a, self.b]
    }

    /// Unpack a four-word slot; `None` if the kind discriminant is
    /// unknown (a torn or stale slot — never happens in SPSC use).
    pub(crate) fn unpack(w: [u64; 4]) -> Option<TraceEvent> {
        let kind = EventKind::from_u16((w[1] & 0xffff) as u16)?;
        Some(TraceEvent {
            ts_ns: w[0],
            session: (w[1] >> 32) as u32,
            shard: ((w[1] >> 16) & 0xffff) as u16,
            kind,
            a: w[2],
            b: w[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_their_discriminants() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_u16(kind as u16), Some(kind));
            assert!(!kind.label().is_empty());
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(EventKind::from_u16(0), None);
        assert_eq!(EventKind::from_u16(999), None);
    }

    #[test]
    fn events_pack_and_unpack_losslessly() {
        let ev = TraceEvent {
            ts_ns: u64::MAX - 7,
            session: 0xdead_beef,
            shard: 0xabc,
            kind: EventKind::PacerShrink,
            a: 64,
            b: 32,
        };
        assert_eq!(TraceEvent::unpack(ev.pack()), Some(ev));
    }

    #[test]
    fn unknown_kind_fails_unpack() {
        assert_eq!(TraceEvent::unpack([0, 0xffff, 0, 0]), None);
    }
}
