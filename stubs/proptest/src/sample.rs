//! `sample::Index` — a position scaled into any collection.

use crate::arbitrary::Arbitrary;
use crate::rng::TestRng;

/// An arbitrary position scalable to any collection length, mirroring
/// `proptest::sample::Index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Scales this index into `0..size`.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index: zero-length collection");
        (self.0 % size as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
