//! The [`Engine`] trait: the contract between protocol state machines
//! and their drivers.

use blast_wire::packet::Datagram;

use crate::api::{ActionSink, EngineStats, TimerToken};

/// A sans-I/O protocol engine (one end of one transfer).
///
/// ## Driver contract
///
/// * Call [`start`](Engine::start) exactly once before anything else.
///   Senders emit their opening transmissions from it; receivers are
///   passive and emit nothing.
/// * For every arriving datagram that parses and carries this engine's
///   transfer id, call [`on_datagram`](Engine::on_datagram).  Malformed
///   packets must be dropped *before* the engine — on the paper's
///   hardware that filtering was the Ethernet FCS in the interface.
/// * When a timer the engine armed fires, call
///   [`on_timer`](Engine::on_timer) with its token.  A timer that was
///   re-armed must fire only at its newest expiry; a cancelled timer
///   must not fire at all.
/// * Execute emitted actions in order.
/// * After the engine emits [`crate::api::Action::Complete`] it will
///   emit no further actions, but it remains safe to call — a finished
///   receiver still re-acknowledges duplicate packets so that a lost
///   final ack does not strand the sender (the classic tail problem of
///   §3.2.2: the ack to the last packet can itself be lost).
///
/// Engines are plain state machines (no I/O handles), so the trait
/// requires [`Send`]: drivers that own engines — like the `blast-node`
/// server with its whole session table — can move onto worker threads.
pub trait Engine: Send {
    /// Kick the engine off.
    fn start(&mut self, sink: &mut dyn ActionSink);

    /// Advance the engine's view of the driver's monotonic clock.
    ///
    /// Drivers should call this with their current time (any fixed
    /// epoch — virtual nanoseconds, simulated time, or wall-clock
    /// elapsed) before each [`start`](Engine::start) /
    /// [`on_datagram`](Engine::on_datagram) / [`on_timer`](Engine::on_timer)
    /// call.  Engines use it to take round-trip samples for the
    /// adaptive retransmission timeout
    /// ([`crate::control::RttEstimator`]) *without doing any I/O* —
    /// the clock is an input like datagrams and timer expirations, so
    /// the sans-I/O property is preserved.  Engines that do not track
    /// time (and drivers testing fixed-timeout behaviour) may ignore
    /// it; the default is a no-op and skipping the call merely degrades
    /// the estimator to its configured initial timeout.
    fn set_now(&mut self, _now: std::time::Duration) {}

    /// Feed one parsed datagram addressed to this engine's transfer.
    fn on_datagram(&mut self, dgram: &Datagram<'_>, sink: &mut dyn ActionSink);

    /// Notify that timer `token` fired.
    fn on_timer(&mut self, token: TimerToken, sink: &mut dyn ActionSink);

    /// True once `Complete` has been emitted.
    fn is_finished(&self) -> bool;

    /// Counters accumulated so far.
    fn stats(&self) -> EngineStats;

    /// The transfer this engine serves.
    fn transfer_id(&self) -> u32;

    /// The engine's AIMD pacing state, for engines that pace their
    /// transmissions ([`crate::control::Pacer`]).
    ///
    /// Lets a driver surface the burst-size trajectory of a session it
    /// owns only as a trait object — e.g. the `blast-node` server
    /// folding per-session final/mean burst sizes into its metrics.
    /// Engines that do not pace (receivers, unpaced senders) return
    /// `None` (the default).
    fn pacing_snapshot(&self) -> Option<crate::control::PacerSnapshot> {
        None
    }

    /// Attach a flight-recorder handle ([`blast_telemetry::Recorder`]).
    ///
    /// Engines that trace stamp their events with the `set_now` clock
    /// (the sans-I/O path: the recorder's wall-clock epoch is never
    /// consulted), so drivers should hand every session engine the
    /// recorder of the shard/thread it runs on.  The default discards
    /// the handle — engines without hooks stay untouched.
    fn set_recorder(&mut self, _recorder: blast_telemetry::Recorder) {}

    /// Borrow the receive buffer, for engines that own one.
    ///
    /// Lets a driver extract a completed transfer's payload through the
    /// trait object — e.g. a server storing a pushed blob while the
    /// engine stays registered to re-acknowledge duplicate packets.
    /// Holes are zero-filled until [`is_finished`](Engine::is_finished).
    /// Senders return `None` (the default).
    fn received_data(&self) -> Option<&[u8]> {
        None
    }
}

/// Shared bookkeeping for "the transfer is over" used by every engine:
/// guarantees a single `Complete` emission.
#[derive(Debug, Default, Clone)]
pub(crate) struct Finish {
    done: bool,
}

impl Finish {
    pub(crate) fn is_finished(&self) -> bool {
        self.done
    }

    /// Emit `Complete` exactly once; later calls are ignored.
    pub(crate) fn complete(&mut self, sink: &mut dyn ActionSink, info: crate::api::CompletionInfo) {
        if !self.done {
            self.done = true;
            sink.push_action(crate::api::Action::Complete(Box::new(info)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Action, CompletionInfo};

    #[test]
    fn finish_emits_exactly_once() {
        let mut f = Finish::default();
        let mut sink: Vec<Action> = Vec::new();
        assert!(!f.is_finished());
        f.complete(
            &mut sink,
            CompletionInfo::success(1, EngineStats::default()),
        );
        f.complete(
            &mut sink,
            CompletionInfo::success(2, EngineStats::default()),
        );
        assert!(f.is_finished());
        assert_eq!(sink.len(), 1);
        match &sink[0] {
            Action::Complete(info) => assert_eq!(info.result, Ok(1)),
            other => panic!("unexpected action {other:?}"),
        }
    }
}
