//! The acceptance test for the flight recorder: a 4-shard loopback
//! workload with telemetry enabled must yield a merged trace showing
//! per-shard session pinning, blast-round spans, and at least one AIMD
//! burst transition — and the trace must export to Chrome trace-event
//! JSON that Perfetto can load.  The live `Stats` control verb is
//! exercised against the same node.

use std::time::Duration;

use blast_core::config::ProtocolConfig;
use blast_node::server::NodeBuilder;
use blast_node::{shared_store, Client};
use blast_telemetry::{chrome_trace, jsonl, EventKind};
use blast_udp::sockopt;

fn client_cfg() -> ProtocolConfig {
    let mut c = ProtocolConfig::default();
    c.timeout = Duration::from_millis(15).into();
    c.max_retries = 10_000;
    c
}

fn payload(seed: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| ((i.wrapping_mul(41) ^ seed.wrapping_mul(97)) % 256) as u8)
        .collect()
}

#[test]
fn four_shard_workload_produces_a_loadable_trace() {
    let store = shared_store();
    for i in 0..4 {
        store.put(&format!("blob-{i}"), payload(i, 60_000).into());
    }
    let node = NodeBuilder::new()
        .timeout(Duration::from_millis(15))
        .max_retries(10_000)
        .shards(4)
        .telemetry(8192)
        .store(store)
        .start()
        .unwrap();
    let addr = node.addr();

    // A mixed workload: 4 pulls (node-side senders — they carry the
    // AIMD pacer) and 2 pushes, each its own socket so the kernel
    // spreads the 4-tuples over the shard group.
    let mut handles = Vec::new();
    for i in 0..4usize {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap().config(client_cfg());
            let report = client.pull(&format!("blob-{i}")).unwrap();
            assert_eq!(report.data, payload(i, 60_000));
        }));
    }
    for i in 0..2usize {
        handles.push(std::thread::spawn(move || {
            let data = payload(10 + i, 30_000);
            let mut client = Client::connect(addr).unwrap().config(client_cfg());
            client.push(&format!("pushed-{i}"), &data).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // The Stats verb, live while the node runs: the remote snapshot
    // must carry the merged accounting and the per-shard breakdown.
    let mut stats_client = Client::connect(addr)
        .unwrap()
        .patience(Duration::from_secs(5));
    let stats = stats_client.stats().unwrap();
    assert!(stats.contains("sessions"), "stats text: {stats}");
    assert!(stats.contains("shard 0:"), "per-shard lines: {stats}");

    assert!(node.wait_idle(Duration::from_secs(10)));
    let shards = node.shards();
    let events = node.drain_trace();
    assert!(
        node.telemetry_dropped() == 0,
        "ring sized for the workload: {} dropped",
        node.telemetry_dropped()
    );
    assert!(!events.is_empty());

    // The merged stream is globally time-ordered.
    assert!(
        events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "drain_trace must merge shards in time order"
    );

    // Session lifecycle: every session admitted was reaped, each on one
    // shard only (per-shard pinning).
    let admits: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SessionAdmit)
        .collect();
    let reaps: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SessionReap)
        .collect();
    assert_eq!(admits.len(), 6, "4 pulls + 2 pushes admitted");
    assert_eq!(reaps.len(), 6);
    assert!(reaps.iter().all(|e| e.a == 1), "all sessions succeeded");
    for admit in &admits {
        let session = admit.session;
        assert!(
            events
                .iter()
                .filter(|e| e.session == session)
                .all(|e| e.shard == admit.shard),
            "session {session} must stay pinned to shard {}",
            admit.shard
        );
    }
    if shards == 4 {
        assert!(sockopt::reuseport_supported());
        let busy: std::collections::HashSet<u16> = admits.iter().map(|e| e.shard).collect();
        assert!(busy.len() >= 2, "6 sessions all hashed onto one shard");
    }

    // Blast rounds bracket properly per session, and the node-side
    // senders (the pulls, paced with the adaptive LAN preset) must show
    // at least one AIMD burst transition.
    let starts = events
        .iter()
        .filter(|e| e.kind == EventKind::RoundStart)
        .count();
    let ends = events
        .iter()
        .filter(|e| e.kind == EventKind::RoundEnd)
        .count();
    assert!(starts >= 4, "each pull runs at least one blast round");
    assert_eq!(starts, ends, "round spans must balance");
    let bursts = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PacerGrow | EventKind::PacerShrink))
        .count();
    assert!(bursts >= 1, "AIMD must register at least one transition");

    // Reactor-plane events rode along on the session-0 lane.
    assert!(events.iter().any(|e| e.kind == EventKind::ShardTick));
    assert!(events.iter().any(|e| e.kind == EventKind::StatsServed));

    // Both exporters accept the stream; the Chrome trace is loadable
    // (structurally balanced JSON with the tracks we promised).
    let lines = jsonl(&events);
    assert_eq!(lines.lines().count(), events.len());
    let trace = chrome_trace(&events);
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.trim_end().ends_with('}'));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    assert!(trace.contains("\"name\":\"shard 0\""));
    assert!(trace.contains("\"ph\":\"B\"") && trace.contains("\"ph\":\"E\""));
    assert!(trace.contains("\"ph\":\"C\""), "burst counter track");

    node.shutdown().unwrap();
}
