//! Checksums: the Internet checksum (RFC 1071) for transport headers and
//! the IEEE 802.3 CRC-32 as a software stand-in for the Ethernet FCS.
//!
//! On the paper's hardware the frame check sequence was computed by the
//! 3-Com interface; a corrupted frame was simply dropped by the receiver,
//! which is why the paper models errors as packet *loss* with probability
//! `p_n` rather than byte corruption.  Our simulated and UDP channels do
//! the same: `blast-sim` drops frames outright, and `blast-udp`'s
//! fault injector corrupts octets which then fail these checksums and are
//! dropped by the demultiplexer — converting corruption into loss exactly
//! as real Ethernet hardware did.

/// Compute the 16-bit ones-complement Internet checksum (RFC 1071) of a
/// byte slice.
///
/// The returned value is the checksum field value to place in the packet:
/// the ones-complement of the ones-complement sum.  Verifying a packet
/// whose checksum field is filled yields `0xffff` from [`sum`] or,
/// equivalently, [`verify`] returns `true`.
///
/// ```
/// let mut data = *b"blast protocol!!";
/// let c = blast_wire::checksum::internet(&data);
/// // Append the checksum and the total now verifies.
/// let mut with = data.to_vec();
/// with.extend_from_slice(&c.to_be_bytes());
/// assert!(blast_wire::checksum::verify(&with));
/// ```
pub fn internet(data: &[u8]) -> u16 {
    !fold(sum(data))
}

/// Raw 32-bit accumulating ones-complement sum of a byte slice (big-endian
/// 16-bit words, odd trailing byte padded with zero).
pub fn sum(data: &[u8]) -> u32 {
    let mut acc: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator into a 16-bit ones-complement value.
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Verify a buffer that *includes* its checksum field: the folded sum of a
/// correct buffer is `0xffff`.
///
/// The all-zero buffer also folds to a passing value; callers that care
/// should reject empty/all-zero packets at a higher layer (the blast
/// header's magic field does this for us).
pub fn verify(data: &[u8]) -> bool {
    fold(sum(data)) == 0xffff
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of a byte
/// slice — the same polynomial the Ethernet FCS uses.
///
/// Implemented with slicing-by-8 (eight 256-entry tables generated at
/// compile time), processing eight input bytes per step.  The FCS is
/// computed once per datagram on each side of every transfer, so its
/// cost is part of the paper's "per-packet software overhead": the
/// previous bitwise loop cost ~10 µs per 1400-byte frame — several
/// *milliseconds* of pure checksumming per 256 KB transfer, dwarfing
/// the batched syscalls it rode on.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = CRC32_INIT;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xff) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xff) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = crc32_step(crc, byte);
    }
    !crc
}

/// Incremental CRC-32 state for streaming use.
///
/// ```
/// use blast_wire::checksum::{crc32, Crc32};
/// let mut s = Crc32::new();
/// s.update(b"hello ");
/// s.update(b"world");
/// assert_eq!(s.finish(), crc32(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: CRC32_INIT }
    }

    /// Absorb more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.state = crc32_step(self.state, byte);
        }
    }

    /// Final CRC value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

const CRC32_INIT: u32 = 0xffff_ffff;
const CRC32_POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables: `CRC_TABLES[k][b]` is the CRC of byte
/// `b` followed by `k` zero bytes, so eight table reads advance the
/// state by eight input bytes.  Generated at compile time from the same
/// polynomial the bitwise reference below implements.
static CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = if crc & 1 != 0 { CRC32_POLY } else { 0 };
            crc = (crc >> 1) ^ mask;
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// One-byte CRC advance (table-driven; the streaming and remainder
/// path).
fn crc32_step(crc: u32, byte: u8) -> u32 {
    (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(byte)) & 0xff) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internet_checksum_rfc1071_example() {
        // The classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7
        // sum to 0xddf2 before complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum(&data)), 0xddf2);
        assert_eq!(internet(&data), !0xddf2);
    }

    #[test]
    fn internet_checksum_odd_length() {
        // A trailing odd byte is padded on the right with zero.
        assert_eq!(sum(&[0xab]), sum(&[0xab, 0x00]));
        let data = [1, 2, 3];
        let c = internet(&data);
        let mut with = data.to_vec();
        // Append pad byte then checksum so words align for verification.
        with.push(0);
        with.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&with));
    }

    #[test]
    fn verify_detects_single_bit_flips() {
        let mut data = b"the quick brown fox jumps over!!".to_vec();
        let c = internet(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert!(!verify(&bad), "flip at byte {byte} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn internet_checksum_is_order_sensitive_within_words_only() {
        // Ones-complement addition commutes across 16-bit words: swapping
        // whole words leaves the checksum unchanged (a known weakness).
        let a = [0x12, 0x34, 0x56, 0x78];
        let b = [0x56, 0x78, 0x12, 0x34];
        assert_eq!(internet(&a), internet(&b));
        // ...but swapping bytes within a word changes it.
        let c = [0x34, 0x12, 0x56, 0x78];
        assert_ne!(internet(&a), internet(&c));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0, 1, 7, 128, 255, 256] {
            let mut s = Crc32::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn crc32_detects_corruption() {
        let data = vec![0xa5u8; 1024];
        let good = crc32(&data);
        let mut bad = data.clone();
        bad[512] ^= 0x01;
        assert_ne!(crc32(&bad), good);
    }

    #[test]
    fn fold_handles_large_accumulators() {
        assert_eq!(fold(0), 0);
        assert_eq!(fold(0xffff), 0xffff);
        assert_eq!(fold(0x1_0000), 1);
        assert_eq!(fold(0xffff_ffff), 0xffff);
    }
}
