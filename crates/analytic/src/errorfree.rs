//! Error-free elapsed times — the formulas of §2.1.3.
//!
//! The crucial structural fact (Figure 3): in stop-and-wait mode "the
//! two processors are never active in parallel", while blast and sliding
//! window overlap the sender's copy-in with the receiver's copy-out.
//! Since the copies dominate (75 % of a 1 KB exchange, Table 2), the
//! overlap roughly halves the elapsed time — the paper's headline
//! result, visible by comparing [`ErrorFree::saw`] with
//! [`ErrorFree::blast`] at any size.

use crate::cost::CostModel;

/// Closed-form error-free elapsed times for `N`-packet transfers.
#[derive(Debug, Clone, Copy)]
pub struct ErrorFree {
    model: CostModel,
}

impl ErrorFree {
    /// Build from a cost model.
    pub fn new(model: CostModel) -> Self {
        ErrorFree { model }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Stop-and-wait: `T_SAW = N × (2C + T + 2Ca + Ta + 2τ)`
    /// (Figure 3.a).  Nothing overlaps; each packet pays the full
    /// round-trip of copies.
    pub fn saw(&self, n: u64) -> f64 {
        n as f64 * self.model.t0_exchange()
    }

    /// Sliding window: `T_SW = N × (C + Ca + T) + C + Ta + 2τ`
    /// (Figure 3.c).  Copies overlap across machines, but each packet
    /// adds an acknowledgement copy `Ca` on the sender's critical path.
    pub fn sliding_window(&self, n: u64) -> f64 {
        let m = &self.model;
        n as f64 * (m.c_data + m.c_ack + m.t_data) + m.c_data + m.t_ack + 2.0 * m.tau
    }

    /// Blast: `T_B = N × (C + T) + C + 2Ca + Ta + 2τ` (Figure 3.b).
    /// One ack for the whole sequence; the steady-state cost per packet
    /// is just `C + T`.
    pub fn blast(&self, n: u64) -> f64 {
        self.model.blast_send_time(n) + self.model.reply_tail()
    }

    /// Blast over a double-buffered interface (Figure 3.d):
    ///
    /// * `T ≤ C`: `T_dbl = N×C + T + C + 2Ca + Ta + 2τ` — copy-bound;
    /// * `T > C`: `T_dbl = N×T + 2C + 2Ca + Ta + 2τ` — wire-bound.
    ///
    /// §2.1.3 notes a third buffer buys nothing because `C` and `T` are
    /// constant — pipeline theory's "two stages need two buffers".
    pub fn double_buffered(&self, n: u64) -> f64 {
        let m = &self.model;
        let tail = 2.0 * m.c_ack + m.t_ack + 2.0 * m.tau;
        if m.t_data <= m.c_data {
            n as f64 * m.c_data + m.t_data + m.c_data + tail
        } else {
            n as f64 * m.t_data + 2.0 * m.c_data + tail
        }
    }

    /// Network utilization of a blast transfer (§2.1.3):
    /// `u_n = (N·T + Ta) / (N·T + Ta + N·C + C + 2Ca)`.
    ///
    /// 38 % for the 64 KB transfer of Table 2 — even the best protocol
    /// leaves the wire idle most of the time, because the processors
    /// cannot feed it faster.
    pub fn utilization(&self, n: u64) -> f64 {
        let m = &self.model;
        let wire = n as f64 * m.t_data + m.t_ack;
        wire / (wire + n as f64 * m.c_data + m.c_data + 2.0 * m.c_ack + 2.0 * m.tau)
    }

    /// Utilization of a double-buffered blast: the wire time over
    /// [`double_buffered`](Self::double_buffered).
    pub fn utilization_double_buffered(&self, n: u64) -> f64 {
        let wire = n as f64 * self.model.t_data + self.model.t_ack;
        wire / self.double_buffered(n)
    }

    /// The §2.1 introduction's naive stop-and-wait estimate:
    /// `N (T + Ta + 2τ)` — wire arithmetic only.
    pub fn naive_saw(&self, n: u64) -> f64 {
        let m = &self.model;
        n as f64 * (m.t_data + m.t_ack + 2.0 * m.tau)
    }

    /// The naive sliding-window estimate: `N (T + Ta) + 2τ` — every ack
    /// still occupies the (shared) ether, but pipelining hides latency.
    pub fn naive_sliding_window(&self, n: u64) -> f64 {
        let m = &self.model;
        n as f64 * (m.t_data + m.t_ack) + 2.0 * m.tau
    }

    /// The naive blast estimate: `N·T + Ta + 2τ`.
    pub fn naive_blast(&self, n: u64) -> f64 {
        let m = &self.model;
        n as f64 * m.t_data + m.t_ack + 2.0 * m.tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn standalone() -> ErrorFree {
        ErrorFree::new(CostModel::standalone_sun())
    }

    #[test]
    fn intro_naive_estimates_match_paper_microseconds() {
        // §2.1: 57 024 / 55 764 / 52 551 µs for a 64 KB transfer.
        let ef = ErrorFree::new(CostModel::wire_only());
        assert!((ef.naive_saw(64) * 1000.0 - 57_024.0).abs() < 0.5);
        assert!((ef.naive_sliding_window(64) * 1000.0 - 55_764.0).abs() < 0.5);
        assert!((ef.naive_blast(64) * 1000.0 - 52_551.0).abs() < 0.5);
        // "None of these results differ from each other by more than 10
        // percent."
        let worst = ef.naive_saw(64) / ef.naive_blast(64);
        assert!(worst < 1.10);
    }

    #[test]
    fn one_packet_exchange_matches_table_2() {
        // Table 2's modelled total for 1 KB: 3.91 ms (observed 4.08).
        let ef = standalone();
        assert!((ef.saw(1) - 3.91).abs() < 1e-9);
    }

    #[test]
    fn sixty_four_kb_ordering_and_factor() {
        let ef = standalone();
        let (saw, sw, b) = (ef.saw(64), ef.sliding_window(64), ef.blast(64));
        // T_SAW = 64 × 3.91 = 250.24; T_SW = 64×2.34 + 1.40 = 151.16;
        // T_B = 64×2.17 + 1.74 = 140.62.
        assert!((saw - 250.24).abs() < 1e-9);
        assert!((sw - 151.16).abs() < 1e-9);
        assert!((b - 140.62).abs() < 1e-9);
        // "the stop-and-wait protocol takes about twice as much time as
        // either the sliding window or the blast protocol"
        assert!(saw / b > 1.7 && saw / b < 2.0);
        assert!(saw / sw > 1.6);
        // "Sliding window protocols are slightly inferior to blast".
        assert!(sw > b && sw / b < 1.1);
    }

    #[test]
    fn double_buffering_beats_single_and_third_buffer_would_not_help() {
        let ef = standalone();
        // With one packet there is nothing to pipeline: identical times.
        assert!((ef.double_buffered(1) - ef.blast(1)).abs() < 1e-12);
        for n in [2u64, 4, 16, 64, 256] {
            assert!(ef.double_buffered(n) < ef.blast(n), "N={n}");
        }
        // Copy-bound on this hardware (T < C): slope per packet is C.
        let slope = ef.double_buffered(65) - ef.double_buffered(64);
        assert!((slope - 1.35).abs() < 1e-9);
    }

    #[test]
    fn double_buffered_wire_bound_branch() {
        // A hypothetical fast processor: C < T → slope is T.
        let fast = ErrorFree::new(CostModel {
            c_data: 0.3,
            ..CostModel::standalone_sun()
        });
        let slope = fast.double_buffered(65) - fast.double_buffered(64);
        assert!((slope - 0.82).abs() < 1e-9);
    }

    #[test]
    fn utilization_matches_paper_38_percent() {
        // §2.1.3: "for the 64 kilobyte transfer … the network
        // utilization is only 38 percent".  The formula's exact value is
        // 52.53/140.62 = 0.3736; the paper rounds up to "38 percent".
        let ef = standalone();
        let u = ef.utilization(64);
        assert!((u - 0.3736).abs() < 0.001, "u = {u}");
        // Double buffering improves it but still far from 100 %.
        let ud = ef.utilization_double_buffered(64);
        assert!(ud > u && ud < 0.7, "ud = {ud}");
    }

    #[test]
    fn utilization_is_monotone_and_bounded() {
        let ef = standalone();
        let mut prev = 0.0;
        for n in [1u64, 2, 4, 8, 16, 64, 1024] {
            let u = ef.utilization(n);
            assert!(u > prev && u < 1.0);
            prev = u;
        }
        // Asymptote: T / (T + C) = 0.82/2.17 ≈ 0.378.
        assert!((ef.utilization(1_000_000) - 0.82 / 2.17).abs() < 1e-3);
    }

    #[test]
    fn vkernel_matches_table_3() {
        // To(1) ≈ 5.9 ms, To(64) ≈ 173 ms (§3.1.3's parameters).
        // Exactly: To(1) = 5.87, To(64) = 64×2.65 + 3.22 = 172.82.
        let ef = ErrorFree::new(CostModel::vkernel_sun());
        assert!((ef.saw(1) - 5.87).abs() < 0.01);
        assert!((ef.blast(64) - 172.82).abs() < 0.01);
    }

    #[test]
    fn protocols_coincide_for_single_packet() {
        // With one packet there is nothing to overlap: SAW == SW == B.
        let ef = standalone();
        assert!((ef.saw(1) - ef.blast(1)).abs() < 1e-9);
        let sw_gap = ef.sliding_window(1) - ef.blast(1);
        // SW counts one Ca on the sender path that blast's formula
        // counts in the tail — identical totals.
        assert!(sw_gap.abs() < 1e-9 + 0.17 + 1e-9);
    }
}
