//! The blast transport header.
//!
//! This is our equivalent of the V interkernel packet header the paper's
//! kernel-level measurements add on top of raw Ethernet (§2.2): enough
//! state to demultiplex concurrent transfers, order packets within a
//! transfer, mark the reliably-transmitted last packet, and detect
//! corruption.  It is deliberately small (32 bytes) — the paper stresses
//! that per-byte copy costs dominate, so header bytes are not free.
//!
//! Layout (all multi-byte fields big-endian):
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |          magic 0xB1A5         |    version    |     kind      |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                          transfer id                          |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                        sequence number                        |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                  total packets in transfer                    |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                         payload length                        |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                  byte offset within transfer                  |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |     retransmission round      |            flags              |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |           checksum            |           reserved            |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```

use core::fmt;

use crate::checksum;
use crate::error::{WireError, WireResult};

/// Length of the fixed blast transport header in bytes.
pub const HEADER_LEN: usize = 32;

/// Magic constant identifying blast transport packets.
pub const MAGIC: u16 = 0xB1A5;

/// The protocol version this implementation speaks.
pub const VERSION: u8 = 1;

/// Packet kinds carried in the `kind` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketKind {
    /// A data packet carrying a slice of the transfer buffer.
    Data = 1,
    /// An acknowledgement packet; its payload is an
    /// [`crate::ack::AckPayload`] (positive or one of the NACK forms).
    Ack = 2,
    /// A transfer request (used by `MoveFrom`, where the data flows
    /// towards the requester, and to open transfers in `blast-udp`).
    Request = 3,
    /// Abort an in-progress transfer.
    Cancel = 4,
    /// Control-plane stats query/reply: a client asks a node for a
    /// live metrics snapshot; the node answers with the same kind and
    /// a small text payload.  Carries no transfer state.
    Stats = 5,
    /// Control-plane third-party-copy verb: a client instructs a node
    /// to move a named blob directly to/from another node.  The payload
    /// is a `blast_udp::copy` sub-message (submit / status query /
    /// status reply / digest); the transfer id demultiplexes copies and
    /// the sequence field echoes request nonces.
    Copy = 6,
}

impl PacketKind {
    /// Parse from the wire discriminant.
    pub fn from_u8(v: u8) -> WireResult<Self> {
        match v {
            1 => Ok(PacketKind::Data),
            2 => Ok(PacketKind::Ack),
            3 => Ok(PacketKind::Request),
            4 => Ok(PacketKind::Cancel),
            5 => Ok(PacketKind::Stats),
            6 => Ok(PacketKind::Copy),
            other => Err(WireError::BadKind { found: other }),
        }
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PacketKind::Data => "DATA",
            PacketKind::Ack => "ACK",
            PacketKind::Request => "REQ",
            PacketKind::Cancel => "CANCEL",
            PacketKind::Stats => "STATS",
            PacketKind::Copy => "COPY",
        };
        f.write_str(s)
    }
}

/// Header flag bits.
pub mod flags {
    /// This is the final data packet of a blast sequence.  Per §3.2.3 of
    /// the paper the last packet is "sent reliably, i.e. retransmitted
    /// periodically until an acknowledgement is received".
    pub const LAST: u16 = 1 << 0;
    /// The sender expects an acknowledgement for this specific packet
    /// (every packet in stop-and-wait/sliding-window; only the LAST
    /// packet in blast mode).
    pub const RELIABLE: u16 = 1 << 1;
    /// The packet belongs to a V-kernel IPC operation (MoveTo/MoveFrom);
    /// the kernel demultiplexer routes it accordingly.
    pub const KERNEL: u16 = 1 << 2;
    /// This transfer is one chunk of a larger multi-blast sequence
    /// (§3.1.3: "for such very large sizes, we suggest the use of
    /// multiple blasts").
    pub const MULTIBLAST: u16 = 1 << 3;

    /// Mask of all bits this implementation defines; the rest must be
    /// zero (reserved for future revisions).
    pub const KNOWN: u16 = LAST | RELIABLE | KERNEL | MULTIBLAST;
}

/// Field offsets.
mod field {
    use core::ops::Range;
    pub const MAGIC: Range<usize> = 0..2;
    pub const VERSION: usize = 2;
    pub const KIND: usize = 3;
    pub const TRANSFER_ID: Range<usize> = 4..8;
    pub const SEQ: Range<usize> = 8..12;
    pub const TOTAL: Range<usize> = 12..16;
    pub const PAYLOAD_LEN: Range<usize> = 16..20;
    pub const OFFSET: Range<usize> = 20..24;
    pub const ROUND: Range<usize> = 24..26;
    pub const FLAGS: Range<usize> = 26..28;
    pub const CHECKSUM: Range<usize> = 28..30;
    #[allow(dead_code)] // covered by the checksum; kept to document the layout
    pub const RESERVED: Range<usize> = 30..32;
}

/// Zero-copy view of a blast transport packet: the 32-byte header
/// followed by the payload.
#[derive(Debug, Clone)]
pub struct BlastHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> BlastHeader<T> {
    /// Wrap a buffer without validation; accessors panic on short
    /// buffers.  Use [`new_checked`](Self::new_checked) on untrusted
    /// input.
    pub fn new_unchecked(buffer: T) -> Self {
        BlastHeader { buffer }
    }

    /// Wrap and validate: length, magic, version, kind, payload length
    /// and checksum are all checked.
    pub fn new_checked(buffer: T) -> WireResult<Self> {
        let pkt = BlastHeader::new_unchecked(buffer);
        pkt.check()?;
        Ok(pkt)
    }

    /// Run all structural validations on the wrapped buffer.
    pub fn check(&self) -> WireResult<()> {
        let buf = self.buffer.as_ref();
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        if self.magic() != MAGIC {
            return Err(WireError::BadMagic {
                found: self.magic(),
            });
        }
        if self.version() != VERSION {
            return Err(WireError::BadVersion {
                found: self.version(),
            });
        }
        PacketKind::from_u8(buf[field::KIND])?;
        let claimed = self.payload_len() as usize;
        let available = buf.len() - HEADER_LEN;
        if claimed > available {
            return Err(WireError::BadLength { claimed, available });
        }
        if !self.verify_checksum() {
            return Err(WireError::BadChecksum);
        }
        if self.flags() & !flags::KNOWN != 0 {
            return Err(WireError::BadField { field: "flags" });
        }
        if self.kind().expect("kind validated") == PacketKind::Data {
            if self.total() == 0 {
                return Err(WireError::BadField { field: "total" });
            }
            if self.seq() >= self.total() {
                return Err(WireError::BadField { field: "seq" });
            }
        }
        Ok(())
    }

    /// Consume the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Borrow the raw underlying buffer.
    pub fn buffer_ref(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    fn u16_at(&self, range: core::ops::Range<usize>) -> u16 {
        let b = &self.buffer.as_ref()[range];
        u16::from_be_bytes([b[0], b[1]])
    }

    fn u32_at(&self, range: core::ops::Range<usize>) -> u32 {
        let b = &self.buffer.as_ref()[range];
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// The magic constant (should be [`MAGIC`]).
    pub fn magic(&self) -> u16 {
        self.u16_at(field::MAGIC)
    }

    /// Protocol version.
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VERSION]
    }

    /// Packet kind.
    pub fn kind(&self) -> WireResult<PacketKind> {
        PacketKind::from_u8(self.buffer.as_ref()[field::KIND])
    }

    /// Transfer identifier (demultiplexes concurrent transfers).
    pub fn transfer_id(&self) -> u32 {
        self.u32_at(field::TRANSFER_ID)
    }

    /// Sequence number of this packet within the transfer, from 0.
    pub fn seq(&self) -> u32 {
        self.u32_at(field::SEQ)
    }

    /// Total number of data packets in the transfer.
    pub fn total(&self) -> u32 {
        self.u32_at(field::TOTAL)
    }

    /// Number of payload bytes following the header.
    pub fn payload_len(&self) -> u32 {
        self.u32_at(field::PAYLOAD_LEN)
    }

    /// Byte offset of this packet's payload within the transfer buffer.
    ///
    /// Redundant with `seq × packet_size` for fixed-size packets, but
    /// carrying it explicitly lets the receiver place payload bytes with
    /// no per-transfer state — the paper's premise is that the receive
    /// buffer is pre-allocated, so placement is a pure function of the
    /// header.
    pub fn offset(&self) -> u32 {
        self.u32_at(field::OFFSET)
    }

    /// Retransmission round that produced this packet (0 = first
    /// transmission).  Diagnostic only; receivers must not change
    /// behaviour based on it.
    pub fn round(&self) -> u16 {
        self.u16_at(field::ROUND)
    }

    /// Flag bits (see [`flags`]).
    pub fn flags(&self) -> u16 {
        self.u16_at(field::FLAGS)
    }

    /// Whether the LAST flag is set.
    pub fn is_last(&self) -> bool {
        self.flags() & flags::LAST != 0
    }

    /// Whether the RELIABLE flag is set.
    pub fn is_reliable(&self) -> bool {
        self.flags() & flags::RELIABLE != 0
    }

    /// The checksum field as stored.
    pub fn checksum(&self) -> u16 {
        self.u16_at(field::CHECKSUM)
    }

    /// Verify the header checksum (RFC 1071 over the 32 header bytes,
    /// checksum field included; a correct header folds to `0xffff`).
    ///
    /// The payload is *not* covered: on the paper's hardware payload
    /// integrity is the Ethernet FCS's job (see [`crate::checksum`]).
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.buffer.as_ref()[..HEADER_LEN])
    }

    /// The payload bytes as declared by `payload_len`.
    ///
    /// Panics if the buffer is shorter than the declared payload; call
    /// [`check`](Self::check) first on untrusted input.
    pub fn payload(&self) -> &[u8] {
        let len = self.payload_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..HEADER_LEN + len]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> BlastHeader<T> {
    /// Borrow the raw underlying buffer mutably.
    pub fn buffer_mut(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Zero the header region and stamp magic + version, leaving a
    /// well-formed skeleton for the setters.
    pub fn clear(buffer: &mut [u8]) {
        buffer[..HEADER_LEN].fill(0);
        buffer[field::MAGIC].copy_from_slice(&MAGIC.to_be_bytes());
        buffer[field::VERSION] = VERSION;
    }

    fn set_u16_at(&mut self, range: core::ops::Range<usize>, value: u16) {
        self.buffer.as_mut()[range].copy_from_slice(&value.to_be_bytes());
    }

    fn set_u32_at(&mut self, range: core::ops::Range<usize>, value: u32) {
        self.buffer.as_mut()[range].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the packet kind.
    pub fn set_kind(&mut self, kind: PacketKind) {
        self.buffer.as_mut()[field::KIND] = kind as u8;
    }

    /// Set the transfer identifier.
    pub fn set_transfer_id(&mut self, id: u32) {
        self.set_u32_at(field::TRANSFER_ID, id);
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        self.set_u32_at(field::SEQ, seq);
    }

    /// Set the total packet count.
    pub fn set_total(&mut self, total: u32) {
        self.set_u32_at(field::TOTAL, total);
    }

    /// Set the payload length.
    pub fn set_payload_len(&mut self, len: u32) {
        self.set_u32_at(field::PAYLOAD_LEN, len);
    }

    /// Set the byte offset.
    pub fn set_offset(&mut self, offset: u32) {
        self.set_u32_at(field::OFFSET, offset);
    }

    /// Set the retransmission round.
    pub fn set_round(&mut self, round: u16) {
        self.set_u16_at(field::ROUND, round);
    }

    /// Set the flag bits.
    pub fn set_flags(&mut self, flags: u16) {
        self.set_u16_at(field::FLAGS, flags);
    }

    /// Mutable payload region (everything after the header).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }

    /// Compute and store the header checksum.  Must be called after all
    /// other fields are final.
    pub fn fill_checksum(&mut self) {
        self.set_u16_at(field::CHECKSUM, 0);
        let sum = checksum::internet(&self.buffer.as_ref()[..HEADER_LEN]);
        self.set_u16_at(field::CHECKSUM, sum);
    }
}

impl<T: AsRef<[u8]>> fmt::Display for BlastHeader<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind() {
            Ok(k) => k.to_string(),
            Err(_) => format!(
                "kind?{:#04x}",
                self.buffer.as_ref().get(3).copied().unwrap_or(0)
            ),
        };
        write!(
            f,
            "{kind} xfer={} seq={}/{} len={} round={}{}{}",
            self.transfer_id(),
            self.seq(),
            self.total(),
            self.payload_len(),
            self.round(),
            if self.is_last() { " LAST" } else { "" },
            if self.is_reliable() { " REL" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data_packet() -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 16];
        BlastHeader::<&mut [u8]>::clear(&mut buf);
        let mut h = BlastHeader::new_unchecked(&mut buf[..]);
        h.set_kind(PacketKind::Data);
        h.set_transfer_id(0xdead_beef);
        h.set_seq(5);
        h.set_total(64);
        h.set_payload_len(16);
        h.set_offset(5 * 1024);
        h.set_round(2);
        h.set_flags(flags::LAST | flags::RELIABLE);
        h.payload_mut()[..16].copy_from_slice(b"0123456789abcdef");
        h.fill_checksum();
        buf
    }

    #[test]
    fn roundtrip_all_fields() {
        let buf = make_data_packet();
        let h = BlastHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(h.magic(), MAGIC);
        assert_eq!(h.version(), VERSION);
        assert_eq!(h.kind().unwrap(), PacketKind::Data);
        assert_eq!(h.transfer_id(), 0xdead_beef);
        assert_eq!(h.seq(), 5);
        assert_eq!(h.total(), 64);
        assert_eq!(h.payload_len(), 16);
        assert_eq!(h.offset(), 5120);
        assert_eq!(h.round(), 2);
        assert!(h.is_last());
        assert!(h.is_reliable());
        assert_eq!(h.payload(), b"0123456789abcdef");
    }

    #[test]
    fn checksum_catches_header_corruption() {
        let good = make_data_packet();
        assert!(BlastHeader::new_checked(&good[..]).is_ok());
        for byte in 0..HEADER_LEN {
            let mut bad = good.clone();
            bad[byte] ^= 0x40;
            // Any single corrupted header byte must fail validation —
            // either the checksum or a stricter field check trips.
            assert!(
                BlastHeader::new_checked(&bad[..]).is_err(),
                "corruption at byte {byte} survived"
            );
        }
    }

    #[test]
    fn payload_not_covered_by_header_checksum() {
        // Payload integrity is the FCS's job; header checksum must still
        // verify when payload changes.
        let mut buf = make_data_packet();
        buf[HEADER_LEN] ^= 0xff;
        assert!(BlastHeader::new_checked(&buf[..]).is_ok());
    }

    #[test]
    fn rejects_truncation() {
        let buf = make_data_packet();
        for len in 0..HEADER_LEN {
            assert!(matches!(
                BlastHeader::new_checked(&buf[..len]).unwrap_err(),
                WireError::Truncated { .. }
            ));
        }
    }

    #[test]
    fn rejects_bad_magic_version_kind() {
        let mut buf = make_data_packet();
        buf[0] = 0x00;
        // Recompute checksum so the magic check is what trips.
        let mut h = BlastHeader::new_unchecked(&mut buf[..]);
        h.fill_checksum();
        assert!(matches!(
            BlastHeader::new_checked(&buf[..]).unwrap_err(),
            WireError::BadMagic { .. }
        ));

        let mut buf = make_data_packet();
        buf[2] = 99;
        let mut h = BlastHeader::new_unchecked(&mut buf[..]);
        h.fill_checksum();
        assert!(matches!(
            BlastHeader::new_checked(&buf[..]).unwrap_err(),
            WireError::BadVersion { found: 99 }
        ));

        let mut buf = make_data_packet();
        buf[3] = 200;
        let mut h = BlastHeader::new_unchecked(&mut buf[..]);
        h.fill_checksum();
        assert!(matches!(
            BlastHeader::new_checked(&buf[..]).unwrap_err(),
            WireError::BadKind { found: 200 }
        ));
    }

    #[test]
    fn rejects_payload_len_overflow() {
        let mut buf = make_data_packet();
        let mut h = BlastHeader::new_unchecked(&mut buf[..]);
        h.set_payload_len(17); // buffer only has 16 payload bytes
        h.fill_checksum();
        assert!(matches!(
            BlastHeader::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength {
                claimed: 17,
                available: 16
            }
        ));
    }

    #[test]
    fn rejects_semantic_nonsense_on_data() {
        // seq >= total
        let mut buf = make_data_packet();
        let mut h = BlastHeader::new_unchecked(&mut buf[..]);
        h.set_seq(64);
        h.set_total(64);
        h.fill_checksum();
        assert!(matches!(
            BlastHeader::new_checked(&buf[..]).unwrap_err(),
            WireError::BadField { field: "seq" }
        ));
        // total == 0
        let mut buf = make_data_packet();
        let mut h = BlastHeader::new_unchecked(&mut buf[..]);
        h.set_seq(0);
        h.set_total(0);
        h.fill_checksum();
        assert!(matches!(
            BlastHeader::new_checked(&buf[..]).unwrap_err(),
            WireError::BadField { field: "total" }
        ));
    }

    #[test]
    fn rejects_unknown_flags() {
        let mut buf = make_data_packet();
        let mut h = BlastHeader::new_unchecked(&mut buf[..]);
        h.set_flags(0x8000);
        h.fill_checksum();
        assert!(matches!(
            BlastHeader::new_checked(&buf[..]).unwrap_err(),
            WireError::BadField { field: "flags" }
        ));
    }

    #[test]
    fn ack_packets_skip_data_field_checks() {
        let mut buf = vec![0u8; HEADER_LEN];
        BlastHeader::<&mut [u8]>::clear(&mut buf);
        let mut h = BlastHeader::new_unchecked(&mut buf[..]);
        h.set_kind(PacketKind::Ack);
        // seq/total zero is fine for acks.
        h.fill_checksum();
        assert!(BlastHeader::new_checked(&buf[..]).is_ok());
    }

    #[test]
    fn display_contains_key_fields() {
        let buf = make_data_packet();
        let h = BlastHeader::new_unchecked(&buf[..]);
        let s = h.to_string();
        assert!(s.contains("DATA"), "{s}");
        assert!(s.contains("seq=5/64"), "{s}");
        assert!(s.contains("LAST"), "{s}");
    }

    #[test]
    fn kind_discriminants_roundtrip() {
        for kind in [
            PacketKind::Data,
            PacketKind::Ack,
            PacketKind::Request,
            PacketKind::Cancel,
            PacketKind::Stats,
            PacketKind::Copy,
        ] {
            assert_eq!(PacketKind::from_u8(kind as u8).unwrap(), kind);
        }
        assert!(PacketKind::from_u8(0).is_err());
        assert!(PacketKind::from_u8(7).is_err());
    }
}
