//! Error type shared by all wire-format parsers in this crate.

use core::fmt;

/// Result alias for wire-format operations.
pub type WireResult<T> = Result<T, WireError>;

/// Reasons a buffer failed to parse (or emit) as a wire structure.
///
/// Parsers in this crate are *total*: any byte buffer either parses into a
/// well-formed view or yields one of these errors — malformed input never
/// panics.  This matters for the fault-injection experiments, which corrupt
/// random octets of in-flight packets (cf. the interface-error discussion
/// in §3 of the paper and the smoltcp-style `--corrupt-chance` knob in
/// `blast-udp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireError {
    /// The buffer is shorter than the fixed part of the structure.
    Truncated {
        /// Bytes required by the structure.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A magic/constant field holds an unexpected value.
    BadMagic {
        /// The value found on the wire.
        found: u16,
    },
    /// The version field names a protocol revision we do not speak.
    BadVersion {
        /// The version found on the wire.
        found: u8,
    },
    /// The packet-kind discriminant is not one we know.
    BadKind {
        /// The discriminant found on the wire.
        found: u8,
    },
    /// A checksum failed to verify.
    BadChecksum,
    /// A length field points outside the buffer.
    BadLength {
        /// The claimed length.
        claimed: usize,
        /// The bytes actually available for it.
        available: usize,
    },
    /// A field value is semantically impossible (e.g. `seq >= total`).
    BadField {
        /// Name of the offending field.
        field: &'static str,
    },
    /// The acknowledgement payload does not match the packet kind.
    BadAck,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated: need {needed} bytes, got {got}")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad magic: {found:#06x}")
            }
            WireError::BadVersion { found } => {
                write!(f, "unsupported version: {found}")
            }
            WireError::BadKind { found } => {
                write!(f, "unknown packet kind: {found:#04x}")
            }
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::BadLength { claimed, available } => {
                write!(f, "bad length: claimed {claimed}, available {available}")
            }
            WireError::BadField { field } => {
                write!(f, "invalid value in field `{field}`")
            }
            WireError::BadAck => write!(f, "acknowledgement payload malformed"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated { needed: 32, got: 4 };
        assert_eq!(e.to_string(), "truncated: need 32 bytes, got 4");
        let e = WireError::BadMagic { found: 0xdead };
        assert!(e.to_string().contains("0xdead"));
        let e = WireError::BadVersion { found: 9 };
        assert!(e.to_string().contains('9'));
        let e = WireError::BadKind { found: 0xff };
        assert!(e.to_string().contains("0xff"));
        assert_eq!(WireError::BadChecksum.to_string(), "checksum mismatch");
        let e = WireError::BadLength {
            claimed: 4096,
            available: 64,
        };
        assert!(e.to_string().contains("4096"));
        let e = WireError::BadField { field: "seq" };
        assert!(e.to_string().contains("seq"));
        assert!(WireError::BadAck.to_string().contains("malformed"));
    }

    #[test]
    fn errors_are_comparable_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(WireError::BadChecksum);
        set.insert(WireError::BadChecksum);
        assert_eq!(set.len(), 1);
        assert_ne!(
            WireError::BadMagic { found: 1 },
            WireError::BadMagic { found: 2 }
        );
    }
}
