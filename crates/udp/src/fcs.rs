//! Frame check sequence for UDP framing.
//!
//! On the paper's hardware the 3-Com interface appended and verified
//! the Ethernet FCS; corrupted frames were dropped before software ever
//! saw them, which is why the paper can model errors as packet *loss*.
//! The blast transport header carries its own checksum, but the payload
//! does not — by design, payload integrity is the FCS's job.
//! [`FcsChannel`] restores that division of labour over UDP: a CRC-32
//! (the Ethernet polynomial) trailer on every datagram, verified and
//! stripped on receive, with mismatches counted and dropped.

use std::io;
use std::time::Duration;

use blast_wire::checksum::crc32;

use crate::channel::Channel;

/// Append the FCS trailer to `payload`, producing the wire frame.
///
/// The building block behind [`FcsChannel::send`], exposed for drivers
/// that manage raw sockets themselves (the `blast-node` server sends
/// with `send_to` on an unconnected socket, which the connected
/// [`Channel`] abstraction cannot express).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(payload.len() + 4);
    frame_into(payload, &mut framed);
    framed
}

/// Build the wire frame into `out` (cleared first), reusing whatever
/// capacity it already holds — the zero-allocation variant of [`frame`]
/// for send paths that keep a scratch buffer (the `blast-node` reactor,
/// [`FcsChannel::send`]).
pub fn frame_into(payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_be_bytes());
}

/// Verify and strip the FCS trailer of a received frame, returning the
/// payload length.  `None` means the frame is corrupt (or too short to
/// carry an FCS) and must be treated as loss.
pub fn unframe(frame: &[u8]) -> Option<usize> {
    let body = frame.len().checked_sub(4)?;
    let got = u32::from_be_bytes(frame[body..].try_into().expect("4-byte slice"));
    (crc32(&frame[..body]) == got).then_some(body)
}

/// Channel wrapper adding an Ethernet-style FCS to every datagram.
#[derive(Debug)]
pub struct FcsChannel<C: Channel> {
    inner: C,
    /// Datagrams dropped because their FCS failed to verify.
    pub fcs_drops: u64,
    /// Reused frame scratch: after the first send, framing a datagram
    /// allocates nothing.
    scratch: Vec<u8>,
}

impl<C: Channel> FcsChannel<C> {
    /// Wrap `inner`.
    pub fn new(inner: C) -> Self {
        FcsChannel {
            inner,
            fcs_drops: 0,
            scratch: Vec::new(),
        }
    }

    /// Take back the wrapped channel.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Channel> Channel for FcsChannel<C> {
    fn send(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        frame_into(buf, &mut scratch);
        let result = self.inner.send(&scratch);
        self.scratch = scratch;
        result
    }

    fn stage(&mut self, buf: &[u8]) -> io::Result<()> {
        // Frame into the reused scratch, then hand the frame to the
        // inner channel's batch — FCS framing rides the batched send
        // path without an extra allocation.
        let mut scratch = std::mem::take(&mut self.scratch);
        frame_into(buf, &mut scratch);
        let result = self.inner.stage(&scratch);
        self.scratch = scratch;
        result
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn set_recorder(&mut self, recorder: blast_telemetry::Recorder) {
        self.inner.set_recorder(recorder);
    }

    fn recv_timeout(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>> {
        loop {
            match self.inner.recv_timeout(buf, timeout)? {
                None => return Ok(None),
                Some(n) => match unframe(&buf[..n]) {
                    Some(body) => return Ok(Some(body)),
                    // Bad FCS (or a runt frame): the interface drops it
                    // silently and the caller's timeout logic proceeds
                    // as if it were lost.  Loop for another datagram
                    // within the same call so a corrupted frame does
                    // not consume the whole timeout budget.
                    None => self.fcs_drops += 1,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::UdpChannel;
    use crate::fault::{FaultConfig, FaultyChannel};

    #[test]
    fn clean_roundtrip_strips_fcs() {
        let (a, b) = UdpChannel::pair().unwrap();
        let mut tx = FcsChannel::new(a);
        let mut rx = FcsChannel::new(b);
        tx.send(b"framed!").unwrap();
        let mut buf = [0u8; 64];
        let n = rx
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"framed!");
        assert_eq!(rx.fcs_drops, 0);
    }

    #[test]
    fn corruption_between_fcs_endpoints_is_dropped() {
        let (a, b) = UdpChannel::pair().unwrap();
        // Corrupt every frame after the FCS is applied.
        let faulty = FaultyChannel::new(
            a,
            FaultConfig {
                corrupt: 1.0,
                ..FaultConfig::none()
            },
            5,
        );
        let mut tx = FcsChannel::new(faulty);
        let mut rx = FcsChannel::new(b);
        tx.send(b"doomed").unwrap();
        let mut buf = [0u8; 64];
        let got = rx
            .recv_timeout(&mut buf, Duration::from_millis(50))
            .unwrap();
        assert_eq!(got, None, "corrupted frame must be dropped, not delivered");
        assert_eq!(rx.fcs_drops, 1);
    }

    #[test]
    fn corrupted_frame_does_not_eat_good_one_in_same_call() {
        let (mut raw_a, b) = UdpChannel::pair().unwrap();
        let mut rx = FcsChannel::new(b);
        // One corrupted frame then one good frame, sent raw.
        let mut bad = b"good".to_vec();
        bad.extend_from_slice(&crc32(b"good").to_be_bytes());
        bad[0] ^= 0xff;
        raw_a.send(&bad).unwrap();
        let mut good = b"good".to_vec();
        good.extend_from_slice(&crc32(b"good").to_be_bytes());
        raw_a.send(&good).unwrap();
        let mut buf = [0u8; 64];
        let n = rx
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"good");
        assert_eq!(rx.fcs_drops, 1);
    }

    #[test]
    fn runt_frames_dropped() {
        let (mut raw_a, b) = UdpChannel::pair().unwrap();
        let mut rx = FcsChannel::new(b);
        raw_a.send(&[1, 2]).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(
            rx.recv_timeout(&mut buf, Duration::from_millis(50))
                .unwrap(),
            None
        );
        assert_eq!(rx.fcs_drops, 1);
    }

    #[test]
    fn frame_unframe_roundtrip() {
        let framed = frame(b"payload");
        assert_eq!(framed.len(), 11);
        assert_eq!(unframe(&framed), Some(7));
        let mut bad = framed.clone();
        bad[2] ^= 0x10;
        assert_eq!(unframe(&bad), None);
        assert_eq!(unframe(&[1, 2, 3]), None, "runt frame");
        assert_eq!(unframe(&frame(b"")), Some(0));
    }

    #[test]
    fn empty_payload_frames_ok() {
        let (a, b) = UdpChannel::pair().unwrap();
        let mut tx = FcsChannel::new(a);
        let mut rx = FcsChannel::new(b);
        tx.send(b"").unwrap();
        let mut buf = [0u8; 16];
        let n = rx
            .recv_timeout(&mut buf, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(n, 0);
    }
}
