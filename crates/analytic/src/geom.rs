//! Geometric-distribution helpers.
//!
//! §3.1 of the paper: "the probabilities `s(i+1)` of the exchange
//! succeeding on the (i+1)th transmission attempt form a geometric
//! distribution with parameter `p_c`".  The number of *failures* before
//! success is geometric on {0, 1, 2, …}; everything in §3 reduces to its
//! first two moments.

/// P(failures = i) for a geometric distribution with failure
/// probability `p` per attempt: `pⁱ (1−p)`.
pub fn pmf(p: f64, i: u32) -> f64 {
    debug_assert!((0.0..1.0).contains(&p));
    p.powi(i as i32) * (1.0 - p)
}

/// Expected number of failures before success: `p / (1−p)`.
///
/// This is the multiplier in every expected-time formula of §3.1: each
/// failure costs one timed-out attempt.
pub fn mean_failures(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p));
    p / (1.0 - p)
}

/// Variance of the number of failures: `p / (1−p)²`.
pub fn var_failures(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p));
    p / ((1.0 - p) * (1.0 - p))
}

/// Standard deviation of the number of failures: `√p / (1−p)`.
pub fn stddev_failures(p: f64) -> f64 {
    var_failures(p).sqrt()
}

/// Probability that at least one of `k` independent events, each of
/// probability `p_n`, occurs: `1 − (1−p_n)^k`.
///
/// With `k = D + 1` this is the paper's blast failure probability
/// (`D` data packets plus the acknowledgement); with `k = 2` the
/// stop-and-wait exchange failure probability.
pub fn any_of(p_n: f64, k: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p_n));
    1.0 - (1.0 - p_n).powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn pmf_sums_to_one() {
        for p in [0.0, 0.1, 0.5, 0.9] {
            let total: f64 = (0..10_000).map(|i| pmf(p, i)).sum();
            assert!(close(total, 1.0, 1e-9), "p={p}: {total}");
        }
    }

    #[test]
    fn moments_match_pmf() {
        for p in [0.05, 0.3, 0.7] {
            let mean: f64 = (0..100_000).map(|i| i as f64 * pmf(p, i)).sum();
            let var: f64 = (0..100_000)
                .map(|i| (i as f64 - mean).powi(2) * pmf(p, i))
                .sum();
            assert!(close(mean, mean_failures(p), 1e-6), "p={p}");
            assert!(close(var, var_failures(p), 1e-5), "p={p}");
            assert!(close(stddev_failures(p), var.sqrt(), 1e-6));
        }
    }

    #[test]
    fn no_loss_means_no_failures() {
        assert_eq!(mean_failures(0.0), 0.0);
        assert_eq!(var_failures(0.0), 0.0);
        assert_eq!(any_of(0.0, 65), 0.0);
    }

    #[test]
    fn any_of_grows_with_k_and_p() {
        assert!(any_of(1e-4, 65) > any_of(1e-4, 2));
        assert!(any_of(1e-3, 65) > any_of(1e-4, 65));
        // Small-p approximation: 1-(1-p)^k ≈ k·p, to second order
        // (the C(65,2)·p² ≈ 2·10⁻⁹ correction).
        assert!(close(any_of(1e-6, 65), 65e-6, 1e-8));
        // Certain loss.
        assert_eq!(any_of(1.0, 1), 1.0);
    }
}
