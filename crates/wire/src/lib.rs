//! # blast-wire — wire formats for large-data-transfer protocols
//!
//! This crate defines the on-the-wire representation used by every
//! protocol in the `blastlan` workspace, which reproduces
//! *W. Zwaenepoel, "Protocols for Large Data Transfers over Local
//! Networks", SIGCOMM 1985*.
//!
//! The paper's experiments run directly on the Ethernet data-link layer:
//! "no header (other than the Ethernet data link header) is added to the
//! data" in the standalone measurements, while the V-kernel measurements
//! add a small interkernel header for demultiplexing, access checking and
//! retransmission state.  This crate provides both layers:
//!
//! * [`frame`] — Ethernet II framing ([`frame::EthernetFrame`]), exactly
//!   what the 3-Com interface put on the 10 Mbit cable;
//! * [`header`] — the blast transport header ([`header::BlastHeader`]),
//!   our equivalent of the V interkernel packet header: transfer id,
//!   sequence number, packet count, flags and a header checksum;
//! * [`ack`] — acknowledgement payload encodings for the four
//!   retransmission strategies of §3.2 of the paper: positive ack,
//!   full-retransmission NACK, first-missing NACK (go-back-n) and
//!   bitmap NACK (selective retransmission);
//! * [`checksum`] — the Internet checksum (RFC 1071) used for the
//!   transport header and an IEEE 802.3 CRC-32 for whole-frame checks,
//!   standing in for the Ethernet FCS computed by the interface hardware;
//! * [`packet`] — a convenience builder/parser that assembles the above
//!   into complete datagrams and decodes them back.
//!
//! ## Design
//!
//! All packet types are *views* over caller-provided buffers
//! (`T: AsRef<[u8]>` to parse, `T: AsMut<[u8]>` to emit), in the style of
//! `smoltcp`.  Nothing in this crate allocates on the datapath; the
//! protocols in `blast-core` reuse a single scratch buffer per engine.
//! This mirrors the paper's premise that per-packet *copy* cost dominates
//! elapsed time on a LAN — the implementation goes out of its way not to
//! add copies of its own.
//!
//! ## Quick example
//!
//! ```
//! use blast_wire::header::{BlastHeader, PacketKind};
//!
//! let mut buf = [0u8; 64];
//! let mut hdr = BlastHeader::new_unchecked(&mut buf[..]);
//! BlastHeader::<&mut [u8]>::clear(hdr.buffer_mut());
//! hdr.set_kind(PacketKind::Data);
//! hdr.set_transfer_id(7);
//! hdr.set_seq(3);
//! hdr.set_total(64);
//! hdr.set_payload_len(16);
//! hdr.fill_checksum();
//!
//! let parsed = BlastHeader::new_checked(&buf[..]).unwrap();
//! assert_eq!(parsed.kind().unwrap(), PacketKind::Data);
//! assert_eq!(parsed.seq(), 3);
//! assert!(parsed.verify_checksum());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ack;
pub mod checksum;
pub mod error;
pub mod frame;
pub mod header;
pub mod mac;
pub mod packet;

pub use ack::{AckPayload, Bitmap};
pub use error::{WireError, WireResult};
pub use frame::EthernetFrame;
pub use header::{BlastHeader, PacketKind, HEADER_LEN};
pub use mac::{EtherType, MacAddr};
pub use packet::{Datagram, DatagramBuilder};

/// Maximum payload of a single Ethernet frame usable for data, as on the
/// experimental network of the paper.
///
/// "The maximum packet size on the 10 megabit Ethernet is 1536 bytes"
/// (§2.1.2, footnote).  After the 14-byte Ethernet header and our
/// 32-byte transport header this still comfortably holds the paper's
/// 1024-byte data packets.
pub const MAX_ETHERNET_PAYLOAD: usize = 1536 - frame::ETHERNET_HEADER_LEN;

/// The data payload size used throughout the paper's experiments (bytes).
pub const PAPER_DATA_PAYLOAD: usize = 1024;

/// The total acknowledgement packet size used throughout the paper (bytes).
pub const PAPER_ACK_BYTES: usize = 64;
