//! # blast-telemetry — the flight recorder
//!
//! The paper's core figures (2 and 3) are *event timelines*: who held
//! the CPU and the wire, and when.  This crate gives the real system
//! the same visibility — a sans-I/O flight recorder whose record path
//! is **allocation-free and lock-free in the steady state**, so it can
//! ride inside the zero-allocation packet path without perturbing the
//! numbers it is meant to explain.
//!
//! * [`event`] — the vocabulary: a fixed-size [`TraceEvent`]
//!   (relative-ns timestamp, session id, static [`EventKind`], two
//!   payload words) and nothing else.  No strings, no boxing.
//! * [`ring`] — per-shard bounded SPSC rings of packed events with
//!   exact overflow accounting ([`Ring::dropped`] equals offered minus
//!   accepted, always).  [`Telemetry`] owns the rings and merges them
//!   into one time-ordered stream on [`Telemetry::drain`]; [`Recorder`]
//!   is the cheap per-shard producer handle threaded through engines,
//!   drivers and reactors.
//! * [`export`] — two renderings of a drained stream: JSONL (one event
//!   per line, grep-able) and the Chrome trace-event format
//!   ([`export::chrome_trace`]), which loads directly into Perfetto
//!   with one process track per shard and one thread track per
//!   session.  [`export::ChromeTraceBuilder`] is the reusable
//!   JSON-building core, also used by `blast-sim` to export the
//!   paper's simulated timelines into the same UI.
//!
//! ## Example
//!
//! ```
//! use blast_telemetry::{EventKind, Telemetry};
//!
//! let tel = Telemetry::new(2, 1024); // 2 shards, 1024 events each
//! let rec = tel.recorder(0);
//! rec.record(7, EventKind::SessionAdmit, 0, 64);
//! rec.record(7, EventKind::RoundStart, 0, 64);
//! rec.record(7, EventKind::RoundEnd, 0, 0);
//! let events = tel.drain();
//! assert_eq!(events.len(), 3);
//! assert!(blast_telemetry::export::chrome_trace(&events).contains("traceEvents"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod ring;

pub use event::{EventKind, TraceEvent};
pub use export::{chrome_trace, jsonl, ChromeTraceBuilder};
pub use ring::{Recorder, Ring, Telemetry};
