//! Per-session and aggregate node metrics.
//!
//! A node is judged on aggregate concurrent throughput, so the loop
//! records, per completed session, the engine counters the paper's
//! experiments track (packets, retransmissions, rounds) plus wall-clock
//! elapsed time and goodput — and folds the latter two into
//! [`OnlineStats`] accumulators so a long-lived node summarises
//! millions of sessions in O(1) memory.

use std::ops::Deref;
use std::time::Duration;

use blast_core::api::EngineStats;
use blast_core::PacerSnapshot;
use blast_stats::{Histogram, OnlineStats};
use blast_udp::handshake::Direction;
use blast_udp::netio::NetIoStats;

/// One completed (or failed) session, as recorded by the event loop.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The session's transfer id.
    pub transfer_id: u32,
    /// Push (client stored a blob) or pull (client fetched one).
    pub direction: Direction,
    /// Blob name (may be empty for anonymous pushes).
    pub name: String,
    /// Payload bytes moved.
    pub bytes: usize,
    /// Handshake-echo to completion, as seen by the node.
    pub elapsed: Duration,
    /// The session engine's counters.
    pub stats: EngineStats,
    /// The engine's AIMD pacing state at completion (`None` for
    /// receivers and unpaced senders).
    pub pacing: Option<PacerSnapshot>,
    /// Whether the transfer completed successfully.
    pub ok: bool,
}

impl SessionReport {
    /// Goodput in megabits per second.
    pub fn goodput_mbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        (self.bytes * 8) as f64 / secs / 1e6
    }
}

/// Aggregate counters and distributions for one node.
#[derive(Debug, Clone, Default)]
pub struct NodeMetrics {
    /// Sessions opened (handshake accepted).
    pub sessions_accepted: u64,
    /// Sessions that completed successfully.
    pub sessions_completed: u64,
    /// Sessions that ended in failure (engine error or timeout).
    pub sessions_failed: u64,
    /// Push sessions among those accepted.
    pub pushes: u64,
    /// Pull sessions among those accepted.
    pub pulls: u64,
    /// Pull requests for names the store does not have.
    pub pull_misses: u64,
    /// Requests rejected because the transfer id was already in use by
    /// a different peer.
    pub collisions: u64,
    /// Requests rejected because the session table was full.
    pub rejected_busy: u64,
    /// Push requests rejected for announcing more than the node's
    /// maximum transfer size.
    pub rejected_oversize: u64,
    /// Outgoing datagrams dropped at the socket (send buffer full or
    /// peer unreachable) — loss the protocols recover from.
    pub send_drops: u64,
    /// Third-party copies admitted (a client ordered this node to move
    /// a blob to/from another node).
    pub copies_requested: u64,
    /// Copies whose outbound leg completed successfully.
    pub copies_completed: u64,
    /// Copies that failed (missing blob, handshake timeout, transfer
    /// failure, or lifetime bound).
    pub copies_failed: u64,
    /// Payload bytes moved node-to-node by completed copies.
    pub copy_bytes_moved: u64,
    /// Outbound copy-handshake retransmissions (the remote's echo was
    /// slow or lost).
    pub copy_handshake_retx: u64,
    /// Payload bytes received in completed pushes.
    pub bytes_received: u64,
    /// Payload bytes sent in completed pulls.
    pub bytes_sent: u64,
    /// Datagrams read off the socket.
    pub datagrams_received: u64,
    /// Datagrams written to the socket.
    pub datagrams_sent: u64,
    /// Frames dropped for a bad FCS.
    pub fcs_drops: u64,
    /// Datagrams dropped by wire validation.
    pub malformed: u64,
    /// Datagrams for transfer ids with no session.
    pub unroutable: u64,
    /// Which [`blast_udp::netio`] backend the node socket runs
    /// (`"batched"` or `"portable"`).
    pub netio_backend: String,
    /// The backend's segmentation-offload probe outcome
    /// (`"gso+gro"`, `"gso"`, `"gro"`, `"unsupported"`, `"disabled"`,
    /// or `"portable"` — see `blast_udp::netio::OffloadState`).
    pub netio_offload: String,
    /// The node socket's syscall counters (batch amortisation, wait
    /// strategy: epoll wakeups vs timer expiries), snapshotted from the
    /// reactor's [`NetIoStats`] every tick.
    pub io: NetIoStats,
    /// Final AIMD burst size per completed paced (sender) session.
    pub burst_final: OnlineStats,
    /// Mean AIMD burst size per completed paced (sender) session.
    pub burst_mean: OnlineStats,
    /// Windowed-max estimated delivery rate at completion, Mbit/s, per
    /// session whose engine took at least one delivery sample.
    pub rate_mbps: OnlineStats,
    /// Windowed-min round trip at completion, microseconds, per
    /// rate-sampled session.
    pub min_rtt_us: OnlineStats,
    /// Session elapsed-time distribution, in seconds.
    pub session_secs: OnlineStats,
    /// Session goodput distribution, in Mbit/s.
    pub session_goodput_mbps: OnlineStats,
    /// Per-session retransmission-round histogram (every finished
    /// session, failures included): turns "high variance at 16
    /// sessions" into "the p99 session needed 7 retransmission rounds".
    pub retx_rounds: RetxHistogram,
    /// The most recent finished-session reports, oldest first, capped
    /// at [`MAX_REPORTS`] so a long-lived node stays O(1) in memory —
    /// only the [`OnlineStats`] accumulators see every session.
    pub reports: std::collections::VecDeque<SessionReport>,
}

/// How many per-session reports [`NodeMetrics`] retains.
pub const MAX_REPORTS: usize = 1024;

/// The retransmission-round histogram: one unit-wide bucket per round
/// count from 0 to [`RETX_BUCKETS`](RetxHistogram::RETX_BUCKETS) − 1,
/// sessions beyond that clamped into the last bucket (and counted by
/// `clamped()`).  A newtype so `NodeMetrics` keeps `derive(Default)`.
#[derive(Debug, Clone)]
pub struct RetxHistogram(pub Histogram);

impl RetxHistogram {
    /// Bucket count: rounds 0..=62 resolve exactly; ≥ 63 clamp.
    pub const RETX_BUCKETS: usize = 64;
}

impl Default for RetxHistogram {
    fn default() -> Self {
        RetxHistogram(Histogram::linear(
            0.0,
            Self::RETX_BUCKETS as f64,
            Self::RETX_BUCKETS,
        ))
    }
}

impl Deref for RetxHistogram {
    type Target = Histogram;

    fn deref(&self) -> &Histogram {
        &self.0
    }
}

impl NodeMetrics {
    /// Fold another accumulator into this one.
    ///
    /// This is how a sharded node presents one `NodeMetrics` to its
    /// owner: each reactor shard keeps a plain, uncontended accumulator
    /// and the handle merges the published snapshots on read.  Counters
    /// add; distributions combine via [`OnlineStats::merge`] /
    /// [`Histogram::merge`]; recent reports concatenate under the
    /// [`MAX_REPORTS`] cap.
    pub fn merge_from(&mut self, other: &NodeMetrics) {
        self.sessions_accepted += other.sessions_accepted;
        self.sessions_completed += other.sessions_completed;
        self.sessions_failed += other.sessions_failed;
        self.pushes += other.pushes;
        self.pulls += other.pulls;
        self.pull_misses += other.pull_misses;
        self.collisions += other.collisions;
        self.rejected_busy += other.rejected_busy;
        self.rejected_oversize += other.rejected_oversize;
        self.send_drops += other.send_drops;
        self.copies_requested += other.copies_requested;
        self.copies_completed += other.copies_completed;
        self.copies_failed += other.copies_failed;
        self.copy_bytes_moved += other.copy_bytes_moved;
        self.copy_handshake_retx += other.copy_handshake_retx;
        self.bytes_received += other.bytes_received;
        self.bytes_sent += other.bytes_sent;
        self.datagrams_received += other.datagrams_received;
        self.datagrams_sent += other.datagrams_sent;
        self.fcs_drops += other.fcs_drops;
        self.malformed += other.malformed;
        self.unroutable += other.unroutable;
        if self.netio_backend.is_empty() {
            self.netio_backend.clone_from(&other.netio_backend);
        }
        if self.netio_offload.is_empty() {
            self.netio_offload.clone_from(&other.netio_offload);
        }
        self.io.datagrams_sent += other.io.datagrams_sent;
        self.io.send_batches += other.io.send_batches;
        self.io.send_drops += other.io.send_drops;
        self.io.datagrams_received += other.io.datagrams_received;
        self.io.recv_batches += other.io.recv_batches;
        self.io.wakeups += other.io.wakeups;
        self.io.timeouts += other.io.timeouts;
        self.io.gso_super_datagrams += other.io.gso_super_datagrams;
        self.io.gso_segments += other.io.gso_segments;
        self.io.gro_super_datagrams += other.io.gro_super_datagrams;
        self.io.gro_segments += other.io.gro_segments;
        self.burst_final.merge(&other.burst_final);
        self.burst_mean.merge(&other.burst_mean);
        self.rate_mbps.merge(&other.rate_mbps);
        self.min_rtt_us.merge(&other.min_rtt_us);
        self.session_secs.merge(&other.session_secs);
        self.session_goodput_mbps.merge(&other.session_goodput_mbps);
        self.retx_rounds.0.merge(&other.retx_rounds.0);
        for report in &other.reports {
            if self.reports.len() == MAX_REPORTS {
                self.reports.pop_front();
            }
            self.reports.push_back(report.clone());
        }
    }

    /// Publish this accumulator into `dst`, reusing `dst`'s
    /// allocations.
    ///
    /// A reactor shard calls this once per tick to refresh its shared
    /// snapshot slot.  In steady state (same backend string, histogram
    /// geometry, and report set) the copy performs zero allocations —
    /// only a new finished session, which may grow `dst.reports`,
    /// allocates, and session completion is off the packet hot path by
    /// definition.
    pub fn publish_into(&self, dst: &mut NodeMetrics) {
        let reports_stale = dst.reports.len() != self.reports.len()
            || dst.sessions_completed != self.sessions_completed
            || dst.sessions_failed != self.sessions_failed;
        dst.sessions_accepted = self.sessions_accepted;
        dst.sessions_completed = self.sessions_completed;
        dst.sessions_failed = self.sessions_failed;
        dst.pushes = self.pushes;
        dst.pulls = self.pulls;
        dst.pull_misses = self.pull_misses;
        dst.collisions = self.collisions;
        dst.rejected_busy = self.rejected_busy;
        dst.rejected_oversize = self.rejected_oversize;
        dst.send_drops = self.send_drops;
        dst.copies_requested = self.copies_requested;
        dst.copies_completed = self.copies_completed;
        dst.copies_failed = self.copies_failed;
        dst.copy_bytes_moved = self.copy_bytes_moved;
        dst.copy_handshake_retx = self.copy_handshake_retx;
        dst.bytes_received = self.bytes_received;
        dst.bytes_sent = self.bytes_sent;
        dst.datagrams_received = self.datagrams_received;
        dst.datagrams_sent = self.datagrams_sent;
        dst.fcs_drops = self.fcs_drops;
        dst.malformed = self.malformed;
        dst.unroutable = self.unroutable;
        dst.netio_backend.clone_from(&self.netio_backend);
        dst.netio_offload.clone_from(&self.netio_offload);
        dst.io = self.io;
        dst.burst_final = self.burst_final;
        dst.burst_mean = self.burst_mean;
        dst.rate_mbps = self.rate_mbps;
        dst.min_rtt_us = self.min_rtt_us;
        dst.session_secs = self.session_secs;
        dst.session_goodput_mbps = self.session_goodput_mbps;
        dst.retx_rounds.0.clone_from(&self.retx_rounds.0);
        if reports_stale {
            dst.reports.clear();
            dst.reports.extend(self.reports.iter().cloned());
        }
    }

    /// Record a finished session.
    pub fn record(&mut self, report: SessionReport) {
        self.retx_rounds
            .0
            .record(report.stats.retransmission_rounds as f64);
        if let Some(p) = &report.pacing {
            self.burst_final.push(f64::from(p.burst));
            self.burst_mean.push(p.mean_burst);
            if p.rate_samples > 0 {
                self.rate_mbps.push(p.rate_bps * 8.0 / 1e6);
                self.min_rtt_us.push(p.min_rtt_us);
            }
        }
        if report.ok {
            self.sessions_completed += 1;
            match report.direction {
                Direction::Push => self.bytes_received += report.bytes as u64,
                Direction::Pull => self.bytes_sent += report.bytes as u64,
            }
            self.session_secs.push(report.elapsed.as_secs_f64());
            self.session_goodput_mbps.push(report.goodput_mbps());
        } else {
            self.sessions_failed += 1;
        }
        if self.reports.len() == MAX_REPORTS {
            self.reports.pop_front();
        }
        self.reports.push_back(report);
    }

    /// Sessions currently unaccounted for (accepted but not yet
    /// completed or failed).
    pub fn sessions_in_flight(&self) -> u64 {
        self.sessions_accepted - self.sessions_completed - self.sessions_failed
    }

    /// Third-party copies still driving their outbound leg.
    pub fn copies_in_flight(&self) -> u64 {
        self.copies_requested - self.copies_completed - self.copies_failed
    }

    /// A multi-line, human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "sessions: {} accepted ({} push / {} pull), {} completed, {} failed, {} in flight\n\
             rejects: {} pull misses, {} id collisions, {} at capacity, {} oversize\n\
             copies: {} requested, {} completed, {} failed, {} in flight; {} B moved, {} handshake retx\n\
             payload: {} B in, {} B out; datagrams: {} in / {} out ({} bad FCS, {} malformed, {} unroutable, {} send drops)\n\
             netio [{}, offload {}]: {} send batches / {} recv batches; waits: {} wakeups / {} timeouts\n\
             offload: {} segments out in {} super-datagrams, {} segments in from {} super-datagrams\n\
             pacing burst: final {}, mean {} over {} paced sessions\n\
             delivery rate [Mbit/s]: {} over {} rate-sampled sessions; min RTT [µs]: {}\n\
             session time [s]: {}\n\
             goodput [Mbit/s]: {}\n\
             retransmission rounds: p50 {:.1}, p99 {:.1} over {} sessions",
            self.sessions_accepted,
            self.pushes,
            self.pulls,
            self.sessions_completed,
            self.sessions_failed,
            self.sessions_in_flight(),
            self.pull_misses,
            self.collisions,
            self.rejected_busy,
            self.rejected_oversize,
            self.copies_requested,
            self.copies_completed,
            self.copies_failed,
            self.copies_in_flight(),
            self.copy_bytes_moved,
            self.copy_handshake_retx,
            self.bytes_received,
            self.bytes_sent,
            self.datagrams_received,
            self.datagrams_sent,
            self.fcs_drops,
            self.malformed,
            self.unroutable,
            self.send_drops,
            self.netio_backend,
            self.netio_offload,
            self.io.send_batches,
            self.io.recv_batches,
            self.io.wakeups,
            self.io.timeouts,
            self.io.gso_segments,
            self.io.gso_super_datagrams,
            self.io.gro_segments,
            self.io.gro_super_datagrams,
            self.burst_final,
            self.burst_mean,
            self.burst_final.count(),
            self.rate_mbps,
            self.rate_mbps.count(),
            self.min_rtt_us,
            self.session_secs,
            self.session_goodput_mbps,
            self.retx_rounds.percentile(50.0),
            self.retx_rounds.percentile(99.0),
            self.retx_rounds.count(),
        )
    }
}

/// One reactor shard's slice of the node's aggregate metrics.
///
/// The merged [`NodeMetrics`] deliberately keeps its pre-sharding shape
/// — one node, one set of counters — so this breakdown is how an
/// operator sees whether the kernel's 4-tuple hash actually spread the
/// load: per-shard session counts, byte counts and goodput, straight
/// from each shard's published accumulator.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index, `0..shards`.
    pub shard: usize,
    /// Sessions this shard's socket accepted.
    pub sessions_accepted: u64,
    /// Sessions completed successfully on this shard.
    pub sessions_completed: u64,
    /// Sessions that failed on this shard.
    pub sessions_failed: u64,
    /// Payload bytes received in completed pushes.
    pub bytes_received: u64,
    /// Payload bytes sent in completed pulls.
    pub bytes_sent: u64,
    /// Datagrams this shard's reactor read off its socket.
    pub datagrams_received: u64,
    /// Datagrams this shard's reactor wrote to its socket.
    pub datagrams_sent: u64,
    /// Outgoing datagrams the kernel dropped at submission.
    pub send_drops: u64,
    /// Per-session goodput distribution on this shard, in Mbit/s.
    pub goodput_mbps: OnlineStats,
    /// The netio backend this shard's socket runs.
    pub netio_backend: String,
}

impl ShardReport {
    /// Extract the shard-level view from one shard's accumulator.
    pub fn from_metrics(shard: usize, m: &NodeMetrics) -> Self {
        ShardReport {
            shard,
            sessions_accepted: m.sessions_accepted,
            sessions_completed: m.sessions_completed,
            sessions_failed: m.sessions_failed,
            bytes_received: m.bytes_received,
            bytes_sent: m.bytes_sent,
            datagrams_received: m.datagrams_received,
            datagrams_sent: m.datagrams_sent,
            send_drops: m.send_drops,
            goodput_mbps: m.session_goodput_mbps,
            netio_backend: m.netio_backend.clone(),
        }
    }

    /// A one-line, human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "shard {}: {} accepted, {} completed, {} failed; {} B in / {} B out; \
             {} dgrams in / {} out ({} send drops); goodput [Mbit/s]: {}",
            self.shard,
            self.sessions_accepted,
            self.sessions_completed,
            self.sessions_failed,
            self.bytes_received,
            self.bytes_sent,
            self.datagrams_received,
            self.datagrams_sent,
            self.send_drops,
            self.goodput_mbps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ok: bool, direction: Direction, bytes: usize, ms: u64) -> SessionReport {
        SessionReport {
            transfer_id: 1,
            direction,
            name: "x".into(),
            bytes,
            elapsed: Duration::from_millis(ms),
            stats: EngineStats::default(),
            pacing: None,
            ok,
        }
    }

    #[test]
    fn record_routes_bytes_by_direction() {
        let mut m = NodeMetrics::default();
        m.sessions_accepted = 3;
        m.record(report(true, Direction::Push, 1000, 10));
        m.record(report(true, Direction::Pull, 500, 20));
        m.record(report(false, Direction::Push, 0, 1));
        assert_eq!(m.sessions_completed, 2);
        assert_eq!(m.sessions_failed, 1);
        assert_eq!(m.bytes_received, 1000);
        assert_eq!(m.bytes_sent, 500);
        assert_eq!(m.sessions_in_flight(), 0);
        assert_eq!(m.session_secs.count(), 2, "failures do not pollute stats");
        assert_eq!(m.reports.len(), 3);
    }

    #[test]
    fn retransmission_rounds_are_histogrammed() {
        let mut m = NodeMetrics::default();
        m.sessions_accepted = 3;
        let mut clean = report(true, Direction::Push, 1000, 10);
        clean.stats.retransmission_rounds = 0;
        let mut lossy = report(true, Direction::Push, 1000, 50);
        lossy.stats.retransmission_rounds = 5;
        let mut failed = report(false, Direction::Pull, 0, 99);
        failed.stats.retransmission_rounds = 7;
        m.record(clean);
        m.record(lossy);
        m.record(failed);
        assert_eq!(m.retx_rounds.count(), 3, "failures are histogrammed too");
        assert_eq!(m.retx_rounds.buckets()[0], 1);
        assert_eq!(m.retx_rounds.buckets()[5], 1);
        assert_eq!(m.retx_rounds.buckets()[7], 1);
        assert!(m.summary().contains("retransmission rounds"));
    }

    #[test]
    fn pacer_snapshots_feed_burst_distributions() {
        let mut m = NodeMetrics::default();
        m.sessions_accepted = 2;
        let mut paced = report(true, Direction::Pull, 1000, 10);
        paced.pacing = Some(PacerSnapshot {
            initial_burst: 32,
            burst: 64,
            min_burst_seen: 16,
            mean_burst: 40.0,
            clean_rounds: 3,
            loss_events: 1,
            rate_bps: 2_000_000.0,
            min_rtt_us: 150.0,
            rate_samples: 5,
            app_limited_samples: 1,
            in_recovery: false,
        });
        m.record(paced);
        m.record(report(true, Direction::Push, 1000, 10)); // unpaced
        assert_eq!(m.burst_final.count(), 1, "only paced sessions counted");
        assert!((m.burst_final.mean() - 64.0).abs() < 1e-9);
        assert!((m.burst_mean.mean() - 40.0).abs() < 1e-9);
        assert_eq!(m.rate_mbps.count(), 1, "rate-sampled sessions counted");
        assert!(
            (m.rate_mbps.mean() - 16.0).abs() < 1e-9,
            "2 MB/s = 16 Mbit/s"
        );
        assert!((m.min_rtt_us.mean() - 150.0).abs() < 1e-9);
        assert!(m.summary().contains("pacing burst"), "{}", m.summary());
        assert!(m.summary().contains("delivery rate"), "{}", m.summary());
    }

    #[test]
    fn goodput_math() {
        let r = report(true, Direction::Push, 1_000_000, 1000);
        assert!((r.goodput_mbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn report_retention_is_bounded() {
        let mut m = NodeMetrics::default();
        m.sessions_accepted = MAX_REPORTS as u64 + 10;
        for i in 0..MAX_REPORTS + 10 {
            let mut r = report(true, Direction::Push, 100, 1);
            r.transfer_id = i as u32;
            m.record(r);
        }
        assert_eq!(m.reports.len(), MAX_REPORTS, "retention capped");
        assert_eq!(m.reports.front().unwrap().transfer_id, 10, "oldest evicted");
        assert_eq!(
            m.sessions_completed,
            MAX_REPORTS as u64 + 10,
            "aggregates still see every session"
        );
    }

    #[test]
    fn merge_from_combines_shard_accumulators() {
        let mut a = NodeMetrics::default();
        a.sessions_accepted = 3;
        a.pushes = 2;
        a.pulls = 1;
        a.datagrams_received = 100;
        a.netio_backend = "batched".into();
        a.io.send_batches = 7;
        a.record(report(true, Direction::Push, 1000, 10));
        a.record(report(true, Direction::Pull, 500, 20));
        a.record(report(false, Direction::Push, 0, 1));

        let mut b = NodeMetrics::default();
        b.sessions_accepted = 1;
        b.pulls = 1;
        b.datagrams_received = 40;
        b.netio_backend = "batched".into();
        b.io.send_batches = 3;
        b.record(report(true, Direction::Pull, 2000, 40));

        let mut merged = NodeMetrics::default();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.sessions_accepted, 4);
        assert_eq!(merged.sessions_completed, 3);
        assert_eq!(merged.sessions_failed, 1);
        assert_eq!(merged.pushes, 2);
        assert_eq!(merged.pulls, 2);
        assert_eq!(merged.datagrams_received, 140);
        assert_eq!(merged.bytes_received, 1000);
        assert_eq!(merged.bytes_sent, 2500);
        assert_eq!(merged.io.send_batches, 10);
        assert_eq!(merged.netio_backend, "batched");
        assert_eq!(merged.session_secs.count(), 3);
        assert_eq!(merged.retx_rounds.count(), 4);
        assert_eq!(merged.reports.len(), 4);
        assert_eq!(merged.sessions_in_flight(), 0);
        // Merging is exact for the mean, not just approximate.
        let all_secs = [0.010, 0.020, 0.040];
        let want = all_secs.iter().sum::<f64>() / 3.0;
        assert!((merged.session_secs.mean() - want).abs() < 1e-12);
    }

    #[test]
    fn merge_and_publish_carry_offload_state() {
        let mut a = NodeMetrics::default();
        a.netio_offload = "gso+gro".into();
        a.io.gso_super_datagrams = 2;
        a.io.gso_segments = 40;
        a.io.gro_super_datagrams = 1;
        a.io.gro_segments = 16;
        let mut b = NodeMetrics::default();
        b.netio_offload = "gso+gro".into();
        b.io.gso_super_datagrams = 1;
        b.io.gso_segments = 24;

        let mut merged = NodeMetrics::default();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.netio_offload, "gso+gro");
        assert_eq!(merged.io.gso_super_datagrams, 3);
        assert_eq!(merged.io.gso_segments, 64);
        assert_eq!(merged.io.gro_super_datagrams, 1);
        assert_eq!(merged.io.gro_segments, 16);

        let mut slot = NodeMetrics::default();
        a.publish_into(&mut slot);
        assert_eq!(slot.netio_offload, "gso+gro");
        assert_eq!(slot.io.gso_segments, 40);
        assert!(a.summary().contains("offload gso+gro"), "{}", a.summary());
    }

    #[test]
    fn merge_from_caps_reports() {
        let mut shard = NodeMetrics::default();
        shard.sessions_accepted = MAX_REPORTS as u64;
        for i in 0..MAX_REPORTS {
            let mut r = report(true, Direction::Push, 100, 1);
            r.transfer_id = i as u32;
            shard.record(r);
        }
        let mut merged = NodeMetrics::default();
        merged.merge_from(&shard);
        merged.merge_from(&shard);
        assert_eq!(merged.reports.len(), MAX_REPORTS);
        assert_eq!(merged.sessions_completed, 2 * MAX_REPORTS as u64);
    }

    #[test]
    fn publish_into_tracks_the_source() {
        let mut local = NodeMetrics::default();
        local.sessions_accepted = 1;
        local.pushes = 1;
        local.netio_backend = "portable".into();
        local.datagrams_received = 5;
        let mut slot = NodeMetrics::default();
        local.publish_into(&mut slot);
        assert_eq!(slot.sessions_accepted, 1);
        assert_eq!(slot.datagrams_received, 5);
        assert_eq!(slot.netio_backend, "portable");
        assert!(slot.reports.is_empty());

        local.datagrams_received = 9;
        local.record(report(true, Direction::Push, 1000, 10));
        local.publish_into(&mut slot);
        assert_eq!(slot.datagrams_received, 9);
        assert_eq!(slot.sessions_completed, 1);
        assert_eq!(slot.reports.len(), 1);
        assert_eq!(slot.retx_rounds.count(), 1);

        // Republishing with no new sessions keeps the reports intact.
        local.datagrams_received = 12;
        local.publish_into(&mut slot);
        assert_eq!(slot.datagrams_received, 12);
        assert_eq!(slot.reports.len(), 1);
    }

    #[test]
    fn shard_report_extracts_the_breakdown() {
        let mut m = NodeMetrics::default();
        m.sessions_accepted = 2;
        m.datagrams_received = 77;
        m.netio_backend = "batched".into();
        m.record(report(true, Direction::Push, 1000, 10));
        let r = ShardReport::from_metrics(3, &m);
        assert_eq!(r.shard, 3);
        assert_eq!(r.sessions_accepted, 2);
        assert_eq!(r.sessions_completed, 1);
        assert_eq!(r.datagrams_received, 77);
        assert_eq!(r.bytes_received, 1000);
        assert_eq!(r.goodput_mbps.count(), 1);
        assert!(r.summary().starts_with("shard 3:"), "{}", r.summary());
    }

    #[test]
    fn summary_mentions_key_counters() {
        let mut m = NodeMetrics::default();
        m.sessions_accepted = 1;
        m.pushes = 1;
        m.record(report(true, Direction::Push, 4096, 5));
        let s = m.summary();
        assert!(s.contains("1 accepted"), "{s}");
        assert!(s.contains("1 completed"), "{s}");
        assert!(s.contains("4096 B in"), "{s}");
    }
}
