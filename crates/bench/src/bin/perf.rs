//! `perf` — the machine-readable performance harness.
//!
//! Unlike the criterion benches (which need minutes of sampling and
//! produce human-oriented reports), this runner executes a fixed,
//! deterministic workload and emits JSON that CI archives on every run,
//! so the repo accumulates a measured performance trajectory instead of
//! one-off numbers:
//!
//! * `BENCH_engines.json` — pure engine cost: full transfers through the
//!   virtual-time harness (no sockets, no simulated hardware), per
//!   protocol variant;
//! * `BENCH_node_loopback.json` — the real thing: aggregate goodput of a
//!   `blast-node` server fan-in over loopback UDP at 1/4/16 concurrent
//!   sessions.
//!
//! Every record carries goodput, p50/p99 latency, and — via the
//! process-wide counting allocator below — **allocations per packet**,
//! the paper's "per-packet software overhead" made observable.
//!
//! Run `--smoke` for the CI-sized workload (a few seconds); the default
//! workload is larger for quieter numbers on a developer machine.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use blast_core::blast::{BlastReceiver, BlastSender};
use blast_core::config::{ProtocolConfig, RetxStrategy};
use blast_core::harness::{Harness, LossPlan};
use blast_core::saw::{SawReceiver, SawSender};
use blast_core::window::WindowSender;
// Every `alloc`/`realloc` in the process bumps the shared counter; the
// sections below read it before and after a measured loop and divide by
// the packets moved — allocations per packet is the headline number the
// zero-allocation hot path is judged on.
use blast_counting_alloc::{allocations, CountingAlloc};
use blast_node::client;
use blast_node::server::{NodeConfig, NodeServer};
use blast_udp::channel::UdpChannel;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured configuration, ready for JSON.
struct Record {
    name: String,
    bytes: usize,
    iters: usize,
    goodput_mbps: f64,
    p50_ms: f64,
    p99_ms: f64,
    packets: u64,
    allocs_per_packet: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn mbps(bytes: u64, elapsed: Duration) -> f64 {
    (bytes as f64 / 1e6) / elapsed.as_secs_f64().max(1e-12)
}

fn payload(bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| (i.wrapping_mul(2654435761) >> 9) as u8)
        .collect()
}

/// Engine-only measurement: run `iters` full transfers through the
/// virtual-time harness.  `run_one` executes a single transfer and
/// returns the datagrams the pair produced; the first (unmeasured) call
/// warms one-time setup — buffer pools, scratch capacity — out of the
/// steady-state numbers.
fn engine_record(
    name: &str,
    bytes: usize,
    iters: usize,
    mut run_one: impl FnMut() -> u64,
) -> Record {
    let mut latencies = Vec::with_capacity(iters);
    let mut packets = 0u64;
    run_one();
    let allocs_before = allocations();
    let t0 = Instant::now();
    for _ in 0..iters {
        let it = Instant::now();
        packets += run_one();
        latencies.push(it.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = t0.elapsed();
    let allocs = allocations() - allocs_before;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Record {
        name: name.to_string(),
        bytes,
        iters,
        goodput_mbps: mbps((bytes * iters) as u64, elapsed),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        packets,
        allocs_per_packet: allocs as f64 / packets.max(1) as f64,
    }
}

/// Node measurement: N concurrent client threads each push `bytes`
/// through one node on loopback; the aggregate goodput across the
/// fan-in is the figure a transfer node is judged on.
fn node_record(sessions: usize, bytes: usize, repeats: usize) -> Record {
    let data = payload(bytes);
    let mut latencies: Vec<f64> = Vec::new();
    let mut goodputs: Vec<f64> = Vec::new();
    let mut packets = 0u64;
    let mut allocs = 0u64;
    for repeat in 0..repeats {
        let mut node_cfg = NodeConfig::default();
        node_cfg.protocol.retransmit_timeout = Duration::from_millis(50);
        node_cfg.protocol.max_retries = 100_000;
        let node = NodeServer::bind(node_cfg)
            .expect("bind node")
            .spawn()
            .expect("spawn node");
        let addr = node.addr();
        let allocs_before = allocations();
        let t0 = Instant::now();
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                let data = data.clone();
                std::thread::spawn(move || {
                    let mut cfg = ProtocolConfig::default();
                    cfg.retransmit_timeout = Duration::from_millis(50);
                    cfg.max_retries = 100_000;
                    cfg.packet_payload = 1400;
                    let id = (repeat * sessions + s + 1) as u32;
                    let ch = UdpChannel::connect("127.0.0.1:0".parse().expect("literal"), addr)
                        .expect("connect");
                    let report =
                        client::push_blob(ch, id, &format!("s{id}"), &data, &cfg).expect("push");
                    report.elapsed.as_secs_f64() * 1e3
                })
            })
            .collect();
        for h in handles {
            latencies.push(h.join().expect("client thread"));
        }
        let elapsed = t0.elapsed();
        allocs += allocations() - allocs_before;
        goodputs.push(mbps((bytes * sessions) as u64, elapsed));
        node.wait_idle(Duration::from_secs(10));
        let server = node.shutdown().expect("node shutdown");
        let m = server.metrics();
        packets += m.datagrams_received + m.datagrams_sent;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Record {
        name: format!("push_{sessions}x{}k", bytes / 1024),
        bytes: bytes * sessions,
        iters: repeats,
        goodput_mbps: goodputs.iter().sum::<f64>() / goodputs.len().max(1) as f64,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        packets,
        allocs_per_packet: allocs as f64 / packets.max(1) as f64,
    }
}

fn write_json(path: &str, section: &str, mode: &str, records: &[Record]) {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"blast-bench/{section}/v1\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"bytes\": {}, \"iters\": {}, \"goodput_mbps\": {:.3}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"packets\": {}, \
             \"allocs_per_packet\": {:.4}}}{comma}",
            r.name,
            r.bytes,
            r.iters,
            r.goodput_mbps,
            r.p50_ms,
            r.p99_ms,
            r.packets,
            r.allocs_per_packet
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
}

fn print_summary(title: &str, records: &[Record]) {
    println!("\n== {title} ==");
    println!(
        "{:<24} {:>14} {:>10} {:>10} {:>10} {:>14}",
        "name", "goodput MB/s", "p50 ms", "p99 ms", "packets", "allocs/packet"
    );
    for r in records {
        println!(
            "{:<24} {:>14.2} {:>10.4} {:>10.4} {:>10} {:>14.4}",
            r.name, r.goodput_mbps, r.p50_ms, r.p99_ms, r.packets, r.allocs_per_packet
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let (engine_iters, saw_iters, node_repeats) = if smoke { (40, 10, 3) } else { (200, 40, 10) };
    const ENGINE_BYTES: usize = 64 * 1024;
    const NODE_BYTES: usize = 256 * 1024;

    let data: Arc<[u8]> = payload(ENGINE_BYTES).into();
    let mut engines = Vec::new();
    for strategy in RetxStrategy::ALL {
        let data = data.clone();
        // One config per record: every iteration's engines share (and
        // keep warm) the same buffer pool, which is the steady-state
        // regime a long-lived node runs in.
        let cfg = ProtocolConfig::default().with_strategy(strategy);
        engines.push(engine_record(
            &format!("blast/{strategy}"),
            ENGINE_BYTES,
            engine_iters,
            move || {
                let mut h = Harness::new(
                    BlastSender::new(1, data.clone(), &cfg),
                    BlastReceiver::new(1, data.len(), &cfg),
                    LossPlan::perfect(),
                );
                let o = h.run().expect("lossless blast transfer");
                o.sender.data_packets_sent + o.receiver.acks_sent
            },
        ));
    }
    {
        let data = data.clone();
        let cfg = ProtocolConfig::default();
        engines.push(engine_record(
            "sliding-window",
            ENGINE_BYTES,
            engine_iters,
            move || {
                let mut h = Harness::new(
                    WindowSender::new(1, data.clone(), &cfg),
                    SawReceiver::new(1, data.len(), &cfg),
                    LossPlan::perfect(),
                );
                let o = h.run().expect("lossless window transfer");
                o.sender.data_packets_sent + o.receiver.acks_sent
            },
        ));
    }
    {
        let data = data.clone();
        let cfg = ProtocolConfig::default();
        engines.push(engine_record(
            "stop-and-wait",
            ENGINE_BYTES,
            saw_iters,
            move || {
                let mut h = Harness::new(
                    SawSender::new(1, data.clone(), &cfg),
                    SawReceiver::new(1, data.len(), &cfg),
                    LossPlan::perfect(),
                );
                let o = h.run().expect("lossless saw transfer");
                o.sender.data_packets_sent + o.receiver.acks_sent
            },
        ));
    }
    print_summary("engines (virtual-time harness, 64 KB transfers)", &engines);
    write_json("BENCH_engines.json", "engines", mode, &engines);

    let mut node = Vec::new();
    for sessions in [1usize, 4, 16] {
        node.push(node_record(sessions, NODE_BYTES, node_repeats));
    }
    print_summary("node_loopback (concurrent push fan-in over UDP)", &node);
    write_json("BENCH_node_loopback.json", "node_loopback", mode, &node);

    println!("\nwrote BENCH_engines.json and BENCH_node_loopback.json ({mode} mode)");
}
