//! Offline in-tree shim for the `criterion` crate.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use: [`criterion_group!`]/[`criterion_main!`], [`Criterion`] with
//! benchmark groups, [`Throughput`], and `Bencher::{iter, iter_custom}`.
//! Measurement is a short warm-up followed by one timed pass sized off
//! the warm-up — mean time and optional throughput, no statistics, no
//! outlier analysis, no reports.  See `stubs/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the time budget one benchmark aims to spend measuring.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let sample_size = self.sample_size;
        let time = self.measurement_time;
        run_one(&name.into(), sample_size, time, None, f);
    }
}

/// How to express a benchmark's work per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A named set of benchmarks sharing throughput/measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done by one iteration of every benchmark in
    /// the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the group's measurement time budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let time = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        run_one(&full, self.criterion.sample_size, time, self.throughput, f);
        self
    }

    /// Ends the group (accepted for API compatibility; nothing to
    /// flush in the shim).
    pub fn finish(self) {}
}

/// Times the body of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the body time itself: `body` receives the iteration count
    /// and returns the total measured duration.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut body: F) {
        self.elapsed = body(self.iters);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: one iteration, timed, to size the measured pass.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Measured pass: aim for the time budget, capped by sample_size.
    let budget_iters = (measurement_time.as_nanos() / per_iter.as_nanos()).max(1);
    let iters = u64::try_from(budget_iters)
        .unwrap_or(u64::MAX)
        .min(sample_size as u64);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);

    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "{name:<50} {:>12} /iter  ({iters} iters){rate}",
        fmt_time(mean)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!` (both the plain and the
/// `name =`/`config =`/`targets =` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
