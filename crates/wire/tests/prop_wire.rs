//! Property-based tests for the wire formats.
//!
//! The fault-injection experiments corrupt arbitrary octets in flight, so
//! the parsers must be *total*: every input either round-trips or fails
//! cleanly.  These tests drive that with random data.

use blast_wire::ack::{AckPayload, Bitmap};
use blast_wire::checksum;
use blast_wire::frame::{EthernetFrame, ETHERNET_HEADER_LEN};
use blast_wire::header::{BlastHeader, PacketKind, HEADER_LEN};
use blast_wire::mac::{EtherType, MacAddr};
use blast_wire::packet::{Datagram, DatagramBuilder};
use proptest::prelude::*;

proptest! {
    #[test]
    fn datagram_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Datagram::parse(&bytes);
    }

    #[test]
    fn header_check_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = BlastHeader::new_checked(&bytes[..]);
    }

    #[test]
    fn ack_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = AckPayload::decode(&bytes);
    }

    #[test]
    fn data_packet_roundtrip(
        transfer_id in any::<u32>(),
        total in 1u32..4096,
        round in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
        last in any::<bool>(),
        kernel in any::<bool>(),
    ) {
        let seq = total - 1; // always valid
        let offset = seq.saturating_mul(1024);
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        let b = DatagramBuilder::new(transfer_id).kernel(kernel);
        let len = b.build_data(&mut buf, seq, total, offset, &payload, round, last).unwrap();
        let d = Datagram::parse(&buf[..len]).unwrap();
        prop_assert_eq!(d.kind, PacketKind::Data);
        prop_assert_eq!(d.transfer_id, transfer_id);
        prop_assert_eq!(d.seq, seq);
        prop_assert_eq!(d.total, total);
        prop_assert_eq!(d.offset, offset);
        prop_assert_eq!(d.round, round);
        prop_assert_eq!(d.is_last(), last);
        prop_assert_eq!(d.payload, &payload[..]);
    }

    #[test]
    fn corrupted_header_byte_never_parses_as_original(
        total in 2u32..128,
        corrupt_at in 0usize..HEADER_LEN,
        xor in 1u8..=255,
    ) {
        let mut buf = vec![0u8; HEADER_LEN + 8];
        let b = DatagramBuilder::new(1);
        let len = b.build_data(&mut buf, 0, total, 0, &[0xaa; 8], 0, false).unwrap();
        let _original = Datagram::parse(&buf[..len]).unwrap();
        buf[corrupt_at] ^= xor;
        // A single-byte XOR changes exactly one 16-bit word of the header
        // by a nonzero delta of magnitude < 0xffff, which the ones-
        // complement checksum always detects (it is only blind to deltas
        // that are multiples of 0xffff).  So corruption anywhere in the
        // header — including the checksum and reserved fields — must make
        // the parse fail.
        prop_assert!(Datagram::parse(&buf[..len]).is_err());
    }

    #[test]
    fn ack_payload_roundtrip_bitmap(
        base in 0u32..10_000,
        nbits in 1u16..512,
        seed in any::<u64>(),
    ) {
        let mut missing = Vec::new();
        let mut x = seed | 1;
        for i in 0..nbits {
            // xorshift-ish deterministic subset selection
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 3 == 0 {
                missing.push(base + u32::from(i));
            }
        }
        let bm = Bitmap::from_missing(base, nbits, missing.iter().copied()).unwrap();
        let p = AckPayload::NackBitmap(bm);
        let mut buf = vec![0u8; p.encoded_len()];
        p.encode(&mut buf).unwrap();
        let back = AckPayload::decode(&buf).unwrap();
        if let AckPayload::NackBitmap(b) = back {
            prop_assert_eq!(b.missing().collect::<Vec<_>>(), missing);
        } else {
            prop_assert!(false, "variant changed");
        }
    }

    #[test]
    fn ethernet_frame_roundtrip(
        dst in any::<[u8; 6]>(),
        src in any::<[u8; 6]>(),
        ethertype in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut buf = vec![0u8; ETHERNET_HEADER_LEN + payload.len()];
        let mut f = EthernetFrame::new_unchecked(&mut buf[..]);
        f.set_dst(MacAddr::new(dst));
        f.set_src(MacAddr::new(src));
        f.set_ethertype(EtherType(ethertype));
        f.payload_mut().copy_from_slice(&payload);
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(f.dst(), MacAddr::new(dst));
        prop_assert_eq!(f.src(), MacAddr::new(src));
        prop_assert_eq!(f.ethertype(), EtherType(ethertype));
        prop_assert_eq!(f.payload(), &payload[..]);
    }

    #[test]
    fn internet_checksum_verifies_after_fill(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let c = checksum::internet(&data);
        let mut with = data.clone();
        if with.len() % 2 != 0 {
            with.push(0);
        }
        with.extend_from_slice(&c.to_be_bytes());
        prop_assert!(checksum::verify(&with));
    }

    #[test]
    fn crc32_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in any::<proptest::sample::Index>(),
    ) {
        let at = split.index(data.len() + 1);
        let mut s = checksum::Crc32::new();
        s.update(&data[..at.min(data.len())]);
        s.update(&data[at.min(data.len())..]);
        prop_assert_eq!(s.finish(), checksum::crc32(&data));
    }

    #[test]
    fn mac_parse_display_roundtrip(octets in any::<[u8; 6]>()) {
        let m = MacAddr::new(octets);
        let s = m.to_string();
        let back: MacAddr = s.parse().unwrap();
        prop_assert_eq!(back, m);
    }
}
