//! Proof that sharding the node kept the metrics machinery off the
//! packet hot path: a counting global allocator watches the three tiers
//! of the pipeline —
//!
//! * **per-datagram accounting** is plain field increments on the
//!   shard's thread-local accumulator: exactly zero allocations (the
//!   old design took a `Mutex<NodeMetrics>` per datagram; the new one
//!   touches no lock and no heap);
//! * **the per-tick publish** (`publish_into` the shared snapshot slot)
//!   reuses the slot's allocations: zero allocations in steady state,
//!   even while counters drift between ticks;
//! * **merge-on-read** (`merge_from`, what `NodeHandle::metrics` does)
//!   is the only tier allowed to allocate, and it runs on the *reader's*
//!   thread — never on a reactor.
//!
//! One `#[test]` on purpose: the allocation counter is process-global,
//! and a sibling test on another thread would pollute the window.

use std::time::Duration;

use blast_core::api::EngineStats;
use blast_core::PacerSnapshot;
use blast_counting_alloc::{allocations, CountingAlloc};
use blast_node::metrics::{NodeMetrics, SessionReport};
use blast_udp::handshake::Direction;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn report(id: u32) -> SessionReport {
    SessionReport {
        transfer_id: id,
        direction: if id % 2 == 0 {
            Direction::Push
        } else {
            Direction::Pull
        },
        name: format!("blob-{id}"),
        bytes: 64 * 1024,
        elapsed: Duration::from_millis(3),
        stats: EngineStats::default(),
        // A rate-based pacer's full snapshot (delivery rate, min-RTT,
        // sample counts): `Copy` all the way through, so the rate
        // telemetry rides the same zero-allocation metrics tiers.
        pacing: Some(PacerSnapshot {
            initial_burst: 16,
            burst: 32,
            min_burst_seen: 8,
            mean_burst: 24.0,
            clean_rounds: 5,
            loss_events: 1,
            rate_bps: 12_500_000.0,
            min_rtt_us: 180.0,
            rate_samples: 6,
            app_limited_samples: 1,
            in_recovery: false,
        }),
        ok: true,
    }
}

#[test]
fn packet_accounting_and_steady_publish_allocate_zero() {
    // One shard's thread-local accumulator plus its shared snapshot
    // slot, wired exactly as `NodeServer` wires them.
    let mut local = NodeMetrics::default();
    let mut slot = NodeMetrics::default();

    // Seed non-trivial state — a backend name and a few finished
    // sessions — and publish once so the slot owns right-sized buffers
    // (the warm-up the reactor gets for free on its first tick).
    local.netio_backend.push_str("batched");
    for id in 0..8 {
        local.record(report(id));
    }
    local.publish_into(&mut slot);

    // Tier 1 — per-datagram accounting: what `drain_socket` does for
    // every packet.  Exactly zero allocations, no lock in sight.
    let before = allocations();
    for i in 0..10_000u64 {
        local.datagrams_received += 1;
        local.bytes_received += 1400;
        local.datagrams_sent += 1;
        local.bytes_sent += 1400;
        local.io.wakeups += i & 1;
    }
    assert_eq!(
        allocations() - before,
        0,
        "per-datagram accounting must not allocate"
    );

    // Tier 2 — the steady-state publish: counters drift between ticks
    // but the finished-session set is unchanged, so refreshing the
    // snapshot reuses every slot allocation (histogram buckets, backend
    // string, report deque).
    let before = allocations();
    for _ in 0..1_000 {
        local.datagrams_received += 1;
        local.bytes_received += 1400;
        local.publish_into(&mut slot);
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state publish_into must reuse the slot's allocations"
    );
    assert_eq!(slot.datagrams_received, local.datagrams_received);
    assert_eq!(slot.netio_backend, "batched");
    assert_eq!(slot.reports.len(), 8, "report snapshot intact");

    // Sanity that the counter is live and the gate means something: a
    // *finished session* may allocate (the report clone into the slot),
    // which is fine — completion is off the packet path by definition.
    let before = allocations();
    local.record(report(99));
    local.publish_into(&mut slot);
    assert!(
        allocations() - before > 0,
        "the counting allocator must observe the completion-path clone"
    );
    assert_eq!(slot.reports.len(), 9);

    // Tier 3 — merge-on-read reconciles exactly, and its (bounded)
    // allocations happen here, on the reader's thread.
    let mut merged = NodeMetrics::default();
    merged.merge_from(&slot);
    assert_eq!(merged.datagrams_received, local.datagrams_received);
    assert_eq!(merged.sessions_completed, 9);
    assert_eq!(merged.reports.len(), 9);
}
