//! # blast-vkernel — a miniature V-kernel IPC substrate
//!
//! The paper's large data transfers "occur as part of the interprocess
//! communication functions provided by the V kernel" (§2): the
//! distributed operating system kernel built at Stanford (Cheriton &
//! Zwaenepoel).  This crate reproduces the slice of the V kernel the
//! paper exercises:
//!
//! * **Processes and messages** ([`process`], [`message`]) — V's
//!   32-byte fixed-size messages with blocking
//!   `Send` / `Receive` / `Reply` semantics;
//! * **Address spaces with pre-registered segments** ([`space`]) — the
//!   paper's premise that "the recipient has sufficient buffers
//!   allocated to receive the data prior to the transfer", which is
//!   what permits copying packets straight from the network interface
//!   into their final destination;
//! * **`MoveTo` / `MoveFrom`** ([`kernel`]) — network-transparent bulk
//!   data movement between address spaces, local moves by direct copy
//!   ("without an intermediate copy"), remote moves by running the
//!   blast engines of `blast-core` over the calibrated simulator of
//!   `blast-sim` with the V-kernel cost constants of Table 3;
//! * **A file server** ([`fileserver`]) — §2's motivating application:
//!   "when a process wants to read an entire file into its address
//!   space, it first allocates a buffer big enough to contain that
//!   file … the file server … uses `MoveTo` to move the file from its
//!   address space into that of the client."
//!
//! Timing model: every remote operation reports the simulated elapsed
//! time of its packet exchange, using the paper's V-kernel constants
//! (`C = 1.83 ms`, `Ca = 0.67 ms`), so `MoveTo` of 64 KB costs the
//! Table 3 value of ≈ 173 ms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fileserver;
pub mod kernel;
pub mod message;
pub mod process;
pub mod space;

pub use fileserver::FileServer;
pub use kernel::{MoveOutcome, VCluster, VKernelError};
pub use message::{MessageKind, VMessage};
pub use process::{Pid, ProcessState};
pub use space::SegmentId;
